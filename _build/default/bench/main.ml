(* Benchmark entry point: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 4 for the index).

   Usage:
     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --only fig8a -- one experiment
     dune exec bench/main.exe -- --list       -- list experiment ids
     SATE_BENCH_FULL=1 dune exec bench/main.exe -- full-scale variants *)

let () =
  let only = ref [] in
  let list_only = ref false in
  let skip_micro = ref false in
  let spec =
    [ ("--only", Arg.String (fun s -> only := s :: !only),
       "ID run only the experiment with this id (repeatable)");
      ("--list", Arg.Set list_only, " list experiment ids and exit");
      ("--no-micro", Arg.Set skip_micro, " skip the bechamel micro-benchmarks") ]
  in
  Arg.parse spec (fun s -> only := s :: !only) "sate bench";
  if !list_only then begin
    List.iter (fun (id, _) -> print_endline id) Experiments.all;
    print_endline "micro"
  end
  else begin
    let selected =
      match !only with
      | [] -> Experiments.all
      | ids -> List.filter (fun (id, _) -> List.mem id ids) Experiments.all
    in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (id, f) ->
        let t = Unix.gettimeofday () in
        f ();
        Printf.printf "--- %s done in %.1f s\n%!" id (Unix.gettimeofday () -. t))
      selected;
    if (not !skip_micro) && (!only = [] || List.mem "micro" !only) then
      Micro.run ();
    Printf.printf "\nTotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)
  end
