bench/main.mli:
