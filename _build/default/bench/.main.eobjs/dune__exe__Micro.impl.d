bench/micro.ml: Analyze Bechamel Benchmark Hashtbl List Measure Printf Sate_baselines Sate_check Sate_core Sate_gnn Sate_te Sate_tensor Sate_util Staged Test Time Toolkit
