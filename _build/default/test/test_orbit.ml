(* Tests for Sate_orbit: shells, propagation, constellation indexing. *)

module Geo = Sate_geo.Geo
module Shell = Sate_orbit.Shell
module Constellation = Sate_orbit.Constellation

let starlink_shell_1 =
  Shell.make ~altitude_km:540.0 ~inclination_deg:53.2 ~planes:72 ~sats_per_plane:22 ()

let test_shell_size () =
  Alcotest.(check int) "72 x 22" 1584 (Shell.size starlink_shell_1)

let test_shell_period () =
  (* LEO at ~550 km altitude: orbital period in the 90-100 min band. *)
  let p = Shell.period_s starlink_shell_1 /. 60.0 in
  Alcotest.(check bool) "period 90-100 min" true (p > 90.0 && p < 100.0)

let test_shell_radius_constant () =
  let expected = Geo.earth_radius_km +. 540.0 in
  List.iter
    (fun time_s ->
      let p = Shell.position starlink_shell_1 ~plane:3 ~slot:7 ~time_s in
      Alcotest.(check (float 1e-6)) "circular orbit radius" expected (Geo.norm p))
    [ 0.0; 100.0; 1234.5; 86400.0 ]

let test_shell_moves () =
  let a = Shell.position starlink_shell_1 ~plane:0 ~slot:0 ~time_s:0.0 in
  let b = Shell.position starlink_shell_1 ~plane:0 ~slot:0 ~time_s:10.0 in
  (* ~7.6 km/s orbital speed -> ~76 km in 10 s. *)
  let d = Geo.distance a b in
  Alcotest.(check bool) "moved 60-90 km" true (d > 60.0 && d < 90.0)

let test_shell_inclination_bounds () =
  (* Latitude never exceeds the inclination for a circular orbit. *)
  for t = 0 to 100 do
    let p = Shell.position starlink_shell_1 ~plane:11 ~slot:3 ~time_s:(float_of_int t *. 60.0) in
    Alcotest.(check bool) "lat bounded by inclination" true
      (Float.abs (Geo.latitude_deg p) <= 53.2 +. 1e-6)
  done

let test_shell_validation () =
  Alcotest.check_raises "zero planes"
    (Invalid_argument "Shell.make: counts must be positive") (fun () ->
      ignore (Shell.make ~altitude_km:550.0 ~inclination_deg:53.0 ~planes:0 ~sats_per_plane:5 ()))

let test_starlink_size () =
  Alcotest.(check int) "4236 satellites" 4236 (Constellation.size Constellation.starlink_phase1)

let test_iridium_size () =
  Alcotest.(check int) "66 satellites" 66 (Constellation.size Constellation.iridium)

let test_of_scale () =
  List.iter
    (fun n -> Alcotest.(check int) "scale" n (Constellation.size (Constellation.of_scale n)))
    [ 66; 176; 396; 528; 1584; 4236 ];
  Alcotest.check_raises "unknown scale"
    (Invalid_argument "Constellation.of_scale: unknown scale 100") (fun () ->
      ignore (Constellation.of_scale 100))

let test_coord_roundtrip_manual () =
  let c = Constellation.starlink_phase1 in
  let coord = { Constellation.shell = 2; plane = 3; slot = 41 } in
  let id = Constellation.id_of_coord c coord in
  Alcotest.(check bool) "roundtrip" true (Constellation.coord_of_id c id = coord)

let test_coord_out_of_range () =
  let c = Constellation.iridium in
  Alcotest.check_raises "bad id" (Invalid_argument "Constellation.coord_of_id")
    (fun () -> ignore (Constellation.coord_of_id c 66))

let test_positions_all () =
  let c = Constellation.iridium in
  let ps = Constellation.positions c ~time_s:0.0 in
  Alcotest.(check int) "all satellites" 66 (Array.length ps);
  Array.iter
    (fun p ->
      Alcotest.(check (float 1e-6)) "iridium radius"
        (Geo.earth_radius_km +. 781.0) (Geo.norm p))
    ps

let test_shells_distinct_altitudes () =
  let c = Constellation.starlink_phase1 in
  let shells = Constellation.shells c in
  Alcotest.(check int) "four shells" 4 (Array.length shells);
  let alts = Array.map (fun s -> s.Shell.altitude_km) shells in
  Alcotest.(check (array (float 0.0))) "altitudes" [| 540.0; 550.0; 560.0; 570.0 |] alts

let prop_coord_roundtrip =
  QCheck.Test.make ~name:"coord_of_id inverse of id_of_coord" ~count:500
    QCheck.(int_bound 4235)
    (fun id ->
      let c = Constellation.starlink_phase1 in
      Constellation.id_of_coord c (Constellation.coord_of_id c id) = id)

let prop_position_radius =
  QCheck.Test.make ~name:"positions stay on shell radius" ~count:200
    QCheck.(pair (int_bound 4235) (float_bound_inclusive 10000.0))
    (fun (id, t) ->
      let c = Constellation.starlink_phase1 in
      let coord = Constellation.coord_of_id c id in
      let shell = (Constellation.shells c).(coord.Constellation.shell) in
      let p = Constellation.position c ~time_s:t id in
      Float.abs (Geo.norm p -. Shell.semi_major_axis_km shell) < 1e-6)

let suite =
  [ Alcotest.test_case "shell size" `Quick test_shell_size;
    Alcotest.test_case "shell period" `Quick test_shell_period;
    Alcotest.test_case "radius constant" `Quick test_shell_radius_constant;
    Alcotest.test_case "shell moves" `Quick test_shell_moves;
    Alcotest.test_case "inclination bounds" `Quick test_shell_inclination_bounds;
    Alcotest.test_case "shell validation" `Quick test_shell_validation;
    Alcotest.test_case "starlink size" `Quick test_starlink_size;
    Alcotest.test_case "iridium size" `Quick test_iridium_size;
    Alcotest.test_case "of_scale" `Quick test_of_scale;
    Alcotest.test_case "coord roundtrip" `Quick test_coord_roundtrip_manual;
    Alcotest.test_case "coord out of range" `Quick test_coord_out_of_range;
    Alcotest.test_case "positions all" `Quick test_positions_all;
    Alcotest.test_case "shell altitudes" `Quick test_shells_distinct_altitudes;
    QCheck_alcotest.to_alcotest prop_coord_roundtrip;
    QCheck_alcotest.to_alcotest prop_position_radius ]
