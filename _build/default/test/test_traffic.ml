(* Tests for Sate_traffic: flow classes, Poisson generator, demand
   aggregation. *)

module Flow_class = Sate_traffic.Flow_class
module Generator = Sate_traffic.Generator
module Demand = Sate_traffic.Demand
module Builder = Sate_topology.Builder
module Constellation = Sate_orbit.Constellation
module Rng = Sate_util.Rng

let test_flow_class_parameters () =
  Alcotest.(check (float 1e-9)) "voice 64 kbps" 0.064 (Flow_class.demand_mbps Flow_class.Voice);
  Alcotest.(check (float 1e-9)) "video 8 mbps" 8.0 (Flow_class.demand_mbps Flow_class.Video);
  Alcotest.(check (float 1e-9)) "file 50 mbps" 50.0
    (Flow_class.demand_mbps Flow_class.File_transfer);
  let lo, hi = Flow_class.duration_range_s Flow_class.Voice in
  Alcotest.(check (float 0.0)) "voice min 1 min" 60.0 lo;
  Alcotest.(check (float 0.0)) "voice max 10 min" 600.0 hi

let test_flow_class_durations_in_range () =
  let rng = Rng.create 1 in
  List.iter
    (fun cls ->
      let lo, hi = Flow_class.duration_range_s cls in
      for _ = 1 to 500 do
        let d = Flow_class.sample_duration_s cls rng in
        Alcotest.(check bool) "duration in range" true (d >= lo && d <= hi)
      done)
    Flow_class.all

let test_flow_class_mixture () =
  let rng = Rng.create 2 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let c = Flow_class.sample_class rng in
    Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
  done;
  let frac c =
    float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts c)) /. 10_000.0
  in
  Alcotest.(check bool) "voice ~60%" true (Float.abs (frac Flow_class.Voice -. 0.6) < 0.03);
  Alcotest.(check bool) "video ~30%" true (Float.abs (frac Flow_class.Video -. 0.3) < 0.03)

let test_generator_arrival_rate () =
  let gen = Generator.create ~lambda:50.0 () in
  Generator.advance gen ~to_s:10.0 ;
  (* All sampled durations are >= 60 s, so nothing expires in 10 s:
     expect close to 500 arrivals. *)
  let n = float_of_int (Generator.active_count gen) in
  Alcotest.(check bool) "around 500 flows" true (n > 380.0 && n < 620.0)

let test_generator_expiry () =
  let gen = Generator.create ~lambda:20.0 () in
  Generator.advance gen ~to_s:10.0;
  let before = Generator.active_count gen in
  (* Fast-forward far beyond the longest file transfer (130 min). *)
  Generator.advance gen ~to_s:9_000.0;
  Generator.set_lambda gen 0.0;
  Generator.advance gen ~to_s:18_000.0;
  Alcotest.(check int) "all initial flows expired" 0
    (List.length
       (List.filter (fun f -> f.Generator.start_s < 10.0) (Generator.active_flows gen)));
  Alcotest.(check bool) "flows existed before" true (before > 0)

let test_generator_monotonic_time () =
  let gen = Generator.create ~lambda:1.0 () in
  Generator.advance gen ~to_s:5.0;
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Generator.advance: time must be non-decreasing") (fun () ->
      Generator.advance gen ~to_s:1.0)

let test_demand_aggregation () =
  let d = Demand.of_assoc ~num_sats:10 [ (1, 2, 5.0); (1, 2, 3.0); (3, 4, 1.0); (5, 5, 9.0); (6, 7, 0.0) ] in
  Alcotest.(check int) "two entries (self and zero dropped)" 2 (Demand.num_entries d);
  Alcotest.(check (float 1e-9)) "aggregated" 8.0 (Demand.find d ~src:1 ~dst:2);
  Alcotest.(check (float 1e-9)) "absent" 0.0 (Demand.find d ~src:2 ~dst:1);
  Alcotest.(check (float 1e-9)) "total" 9.0 (Demand.total_demand d);
  Alcotest.(check (array int)) "active satellites" [| 1; 2; 3; 4 |] (Demand.active_satellites d)

let test_demand_volumes () =
  let d = Demand.of_assoc ~num_sats:100 [ (1, 2, 5.0) ] in
  Alcotest.(check int) "dense 100x100x8" 80_000 (Demand.dense_volume_bytes d);
  Alcotest.(check int) "sparse one entry" 16 (Demand.sparse_volume_bytes d);
  Alcotest.(check bool) "pruning wins" true
    (Demand.sparse_volume_bytes d < Demand.dense_volume_bytes d)

let test_demand_at_snapshot () =
  let c = Constellation.iridium in
  let b = Builder.create c in
  let snap = Builder.snapshot b ~time_s:0.0 in
  let gen = Generator.create ~lambda:10.0 () in
  Generator.advance gen ~to_s:30.0;
  let demand, up, down = Generator.demand_at gen snap in
  Alcotest.(check bool) "entries exist" true (Demand.num_entries demand > 0);
  Array.iter
    (fun (e : Demand.entry) ->
      Alcotest.(check bool) "src in range" true (e.Demand.src >= 0 && e.Demand.src < 66);
      Alcotest.(check bool) "dst in range" true (e.Demand.dst >= 0 && e.Demand.dst < 66);
      Alcotest.(check bool) "src <> dst" true (e.Demand.src <> e.Demand.dst);
      Alcotest.(check bool) "demand positive" true (e.Demand.demand_mbps > 0.0);
      (* Per-connection clamp: no single flow above 50 Mbps, but
         aggregates may exceed it; demand is at least one voice flow. *)
      Alcotest.(check bool) "demand at least 64 kbps" true (e.Demand.demand_mbps >= 0.064))
    demand.Demand.entries;
  let caps_ok caps = Array.for_all (fun c -> c >= 0.0) caps in
  Alcotest.(check bool) "up caps nonneg" true (caps_ok up);
  Alcotest.(check bool) "down caps nonneg" true (caps_ok down);
  (* Total uplink capacity is 50 Mbps per active src connection. *)
  let flows = Generator.active_count gen in
  let total_up = Array.fold_left ( +. ) 0.0 up in
  Alcotest.(check bool) "uplink caps bounded by connections" true
    (total_up <= float_of_int flows *. 50.0 +. 1e-6)

let test_demand_deterministic () =
  let run () =
    let c = Constellation.iridium in
    let b = Builder.create c in
    let snap = Builder.snapshot b ~time_s:0.0 in
    let gen = Generator.create ~lambda:5.0 () in
    Generator.advance gen ~to_s:20.0;
    let d, _, _ = Generator.demand_at gen snap in
    (Demand.num_entries d, Demand.total_demand d)
  in
  Alcotest.(check bool) "two runs identical" true (run () = run ())

let prop_demand_of_assoc_total =
  QCheck.Test.make ~name:"of_assoc preserves positive off-diagonal mass" ~count:200
    QCheck.(list (triple (int_bound 9) (int_bound 9) (float_bound_inclusive 10.0)))
    (fun assoc ->
      let d = Demand.of_assoc ~num_sats:10 assoc in
      let expected =
        List.fold_left
          (fun acc (s, t, v) -> if s <> t && v > 0.0 then acc +. v else acc)
          0.0 assoc
      in
      Float.abs (Demand.total_demand d -. expected) < 1e-6)

let suite =
  [ Alcotest.test_case "flow class parameters" `Quick test_flow_class_parameters;
    Alcotest.test_case "durations in range" `Quick test_flow_class_durations_in_range;
    Alcotest.test_case "class mixture" `Quick test_flow_class_mixture;
    Alcotest.test_case "arrival rate" `Quick test_generator_arrival_rate;
    Alcotest.test_case "expiry" `Quick test_generator_expiry;
    Alcotest.test_case "monotonic time" `Quick test_generator_monotonic_time;
    Alcotest.test_case "demand aggregation" `Quick test_demand_aggregation;
    Alcotest.test_case "demand volumes" `Quick test_demand_volumes;
    Alcotest.test_case "demand at snapshot" `Quick test_demand_at_snapshot;
    Alcotest.test_case "demand deterministic" `Quick test_demand_deterministic;
    QCheck_alcotest.to_alcotest prop_demand_of_assoc_total ]
