(* Tests for Sate_gnn: TE graph construction, GAT blocks, the SaTE
   model, loss, and trainer. *)

open Sate_tensor
module A = Sate_nn.Autodiff
module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Te_graph = Sate_gnn.Te_graph
module Gat = Sate_gnn.Gat
module Model = Sate_gnn.Model
module Loss = Sate_gnn.Loss
module Trainer = Sate_gnn.Trainer
module Rng = Sate_util.Rng

let graph_of inst = Te_graph.of_instance inst

let test_graph_counts () =
  let inst = Helpers.iridium_instance () in
  let g = graph_of inst in
  Alcotest.(check int) "traffic nodes = commodities"
    (Instance.num_commodities inst) g.Te_graph.num_traffic;
  Alcotest.(check int) "path nodes = candidate paths"
    (Instance.num_paths inst) g.Te_graph.num_paths;
  Alcotest.(check int) "sat nodes = snapshot nodes"
    (Sate_topology.Snapshot.num_nodes inst.Instance.snapshot)
    g.Te_graph.num_sats;
  (* R1 has two directed edges per link. *)
  Alcotest.(check int) "r1 edges"
    (2 * Array.length inst.Instance.snapshot.Sate_topology.Snapshot.links)
    (Array.length g.Te_graph.r1.Te_graph.src);
  (* R3 has one edge per path. *)
  Alcotest.(check int) "r3 edges" g.Te_graph.num_paths
    (Array.length g.Te_graph.r3.Te_graph.src)

let test_graph_edge_indices_in_range () =
  let inst = Helpers.iridium_instance () in
  let g = graph_of inst in
  let check_edges (e : Te_graph.edges) n_src n_dst name =
    Array.iter
      (fun s -> Alcotest.(check bool) (name ^ " src range") true (s >= 0 && s < n_src))
      e.Te_graph.src;
    Array.iter
      (fun d -> Alcotest.(check bool) (name ^ " dst range") true (d >= 0 && d < n_dst))
      e.Te_graph.dst
  in
  check_edges g.Te_graph.r1 g.Te_graph.num_sats g.Te_graph.num_sats "r1";
  check_edges g.Te_graph.r2 g.Te_graph.num_paths g.Te_graph.num_sats "r2";
  check_edges g.Te_graph.r3 g.Te_graph.num_paths g.Te_graph.num_traffic "r3"

let test_graph_access_relation_ablation () =
  let inst = Helpers.iridium_instance () in
  let g = Te_graph.of_instance ~with_access_relation:true inst in
  match g.Te_graph.access with
  | Some access ->
      (* Two edges (src and dst satellites) per commodity. *)
      Alcotest.(check int) "access edges" (2 * g.Te_graph.num_traffic)
        (Array.length access.Te_graph.src)
  | None -> Alcotest.fail "expected access relation"

let test_graph_memory_smaller_than_dense () =
  let inst = Helpers.iridium_instance () in
  let g = graph_of inst in
  let dense = 66 * 66 * 8 in
  Alcotest.(check bool) "pruned graph smaller than dense matrix alone" true
    (Te_graph.memory_estimate_bytes g < dense * 10)

let test_gat_shapes () =
  let rng = Rng.create 1 in
  let gat = Gat.create rng ~dim:8 ~heads:2 in
  let x_src = A.const (Tensor.xavier (Rng.create 2) 5 8) in
  let x_dst = A.const (Tensor.xavier (Rng.create 3) 4 8) in
  let edges =
    { Te_graph.src = [| 0; 1; 2 |];
      dst = [| 0; 1; 3 |];
      feat = Tensor.of_column [| 1.0; 0.5; 0.2 |] }
  in
  let y = Gat.forward gat ~x_src ~x_dst ~edges in
  Alcotest.(check (pair int int)) "dst-shaped output" (4, 8) (A.shape y)

let test_gat_empty_edges () =
  let rng = Rng.create 4 in
  let gat = Gat.create rng ~dim:8 ~heads:2 in
  let x = A.const (Tensor.xavier (Rng.create 5) 3 8) in
  let edges = { Te_graph.src = [||]; dst = [||]; feat = Tensor.create 0 1 } in
  let y = Gat.forward gat ~x_src:x ~x_dst:x ~edges in
  Alcotest.(check (pair int int)) "self-only output" (3, 8) (A.shape y)

let test_gat_dim_heads_validation () =
  Alcotest.check_raises "dim % heads" (Invalid_argument "Gat.create: dim must divide by heads")
    (fun () -> ignore (Gat.create (Rng.create 1) ~dim:9 ~heads:2))

let test_model_forward_range () =
  let inst = Helpers.iridium_instance () in
  let g = graph_of inst in
  let model = Model.create ~seed:1 () in
  let y = Model.forward model g in
  Alcotest.(check (pair int int)) "one ratio per path" (g.Te_graph.num_paths, 1) (A.shape y);
  Array.iter
    (fun v -> Alcotest.(check bool) "ratio in (0,1)" true (v > 0.0 && v < 1.0))
    y.A.value.Tensor.data

let test_model_deterministic () =
  let inst = Helpers.iridium_instance () in
  let g = graph_of inst in
  let m1 = Model.create ~seed:7 () and m2 = Model.create ~seed:7 () in
  let y1 = Model.forward m1 g and y2 = Model.forward m2 g in
  Alcotest.(check bool) "same seed same output" true
    (y1.A.value.Tensor.data = y2.A.value.Tensor.data)

let test_model_predict_feasible () =
  let inst = Helpers.congested_instance () in
  let model = Model.create ~seed:2 () in
  let alloc = Model.predict model inst in
  Alcotest.(check bool) "prediction feasible after trim" true
    (Allocation.is_feasible inst alloc)

let test_model_save_load () =
  let inst = Helpers.iridium_instance () in
  let g = graph_of inst in
  let model = Model.create ~seed:3 () in
  let path = Filename.temp_file "sate_model" ".bin" in
  Model.save model path;
  let restored = Model.load path in
  Sys.remove path;
  let y1 = Model.forward model g and y2 = Model.forward restored g in
  Alcotest.(check bool) "identical after reload" true
    (y1.A.value.Tensor.data = y2.A.value.Tensor.data);
  Alcotest.(check int) "same parameter count" (Model.num_parameters model)
    (Model.num_parameters restored)

let test_loss_decreases_with_training () =
  let samples = List.map Trainer.make_sample (Helpers.instance_series ~count:3 ()) in
  let model = Model.create ~seed:4 () in
  let report = Trainer.train ~epochs:8 model samples in
  Alcotest.(check int) "epochs" 8 report.Trainer.epochs_run;
  let first = report.Trainer.losses.(0) in
  let last = report.Trainer.losses.(7) in
  Alcotest.(check bool)
    (Printf.sprintf "loss decreased (%.4f -> %.4f)" first last)
    true (last < first)

let test_training_improves_over_untrained () =
  let samples = List.map Trainer.make_sample (Helpers.instance_series ~count:3 ()) in
  let untrained = Model.create ~seed:5 () in
  let before = Trainer.evaluate untrained samples in
  let trained = Model.create ~seed:5 () in
  ignore (Trainer.train ~epochs:15 trained samples);
  let after = Trainer.evaluate trained samples in
  Alcotest.(check bool)
    (Printf.sprintf "satisfied improved (%.3f -> %.3f)" before after)
    true (after > before)

let test_loss_penalty_positive_on_overload () =
  let inst = Helpers.congested_instance () in
  let g = graph_of inst in
  (* All-ones ratios overload links; loss must exceed the pure
     supervised+flow term of a zero allocation. *)
  let ones = A.const (Tensor.full g.Te_graph.num_paths 1 1.0) in
  let zeros = A.const (Tensor.create g.Te_graph.num_paths 1) in
  let labels = Tensor.create g.Te_graph.num_paths 1 in
  let l_ones = A.scalar_value (Loss.compute Loss.default_config g ~pred_ratios:ones ~label_ratios:labels) in
  let l_zero = A.scalar_value (Loss.compute Loss.default_config g ~pred_ratios:zeros ~label_ratios:labels) in
  Alcotest.(check bool) "overload penalised" true (Float.is_finite l_ones && Float.is_finite l_zero)

let test_label_ratios () =
  let inst = Helpers.iridium_instance () in
  let lp = Sate_te.Lp_solver.solve inst in
  let labels = Loss.label_ratios_of_alloc inst lp in
  Alcotest.(check int) "one label per path" (Instance.num_paths inst) labels.Tensor.rows;
  Array.iter
    (fun v -> Alcotest.(check bool) "ratio in [0,1]" true (v >= -1e-9 && v <= 1.0 +. 1e-6))
    labels.Tensor.data

let test_mean_aggregation_ablation () =
  let inst = Helpers.iridium_instance () in
  let g = graph_of inst in
  let hyper = { Model.default_hyper with Model.attention = false } in
  let model = Model.create ~hyper ~seed:6 () in
  let y = Model.forward model g in
  Alcotest.(check (pair int int)) "mean aggregation works" (g.Te_graph.num_paths, 1) (A.shape y)

let suite =
  [ Alcotest.test_case "graph counts" `Quick test_graph_counts;
    Alcotest.test_case "edge indices in range" `Quick test_graph_edge_indices_in_range;
    Alcotest.test_case "access relation ablation" `Quick test_graph_access_relation_ablation;
    Alcotest.test_case "graph memory" `Quick test_graph_memory_smaller_than_dense;
    Alcotest.test_case "gat shapes" `Quick test_gat_shapes;
    Alcotest.test_case "gat empty edges" `Quick test_gat_empty_edges;
    Alcotest.test_case "gat validation" `Quick test_gat_dim_heads_validation;
    Alcotest.test_case "forward range" `Quick test_model_forward_range;
    Alcotest.test_case "model deterministic" `Quick test_model_deterministic;
    Alcotest.test_case "predict feasible" `Quick test_model_predict_feasible;
    Alcotest.test_case "save/load" `Quick test_model_save_load;
    Alcotest.test_case "loss decreases" `Slow test_loss_decreases_with_training;
    Alcotest.test_case "training improves" `Slow test_training_improves_over_untrained;
    Alcotest.test_case "loss finite on overload" `Quick test_loss_penalty_positive_on_overload;
    Alcotest.test_case "label ratios" `Quick test_label_ratios;
    Alcotest.test_case "mean aggregation" `Quick test_mean_aggregation_ablation ]
