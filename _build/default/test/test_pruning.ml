(* Tests for Sate_pruning: volumes, WL features, DPP selection. *)

module Volume = Sate_pruning.Volume
module Graph_features = Sate_pruning.Graph_features
module Dpp = Sate_pruning.Dpp
module Builder = Sate_topology.Builder
module Constellation = Sate_orbit.Constellation
module Snapshot = Sate_topology.Snapshot
module Demand = Sate_traffic.Demand

let test_volume_reduction () =
  let inst = Helpers.iridium_instance () in
  let demand =
    Demand.of_assoc ~num_sats:66
      (Array.to_list
         (Array.map
            (fun (c : Sate_te.Instance.commodity) ->
              (c.Sate_te.Instance.src, c.Sate_te.Instance.dst, c.Sate_te.Instance.demand_mbps))
            inst.Sate_te.Instance.commodities))
  in
  let r = Volume.of_instance ~k:3 inst demand in
  Alcotest.(check int) "scale" 66 r.Volume.scale;
  Alcotest.(check bool) "reduction factor > 1" true (r.Volume.reduction > 1.0);
  Alcotest.(check bool) "pruned smaller than original" true
    (r.Volume.pruned_path_gb +. r.Volume.pruned_traffic_gb
    < r.Volume.original_path_gb +. r.Volume.original_traffic_gb)

let test_volume_scaling_superlinear () =
  (* Dense volume grows ~n^2: the reduction factor grows with scale
     for a fixed number of active flows (Table 1). *)
  let demand = Demand.of_assoc ~num_sats:1000 [ (0, 1, 5.0); (2, 3, 1.0) ] in
  let small =
    Volume.measure ~num_sats:100 ~k:10 ~avg_path_hops:5.0 ~demand ~active_paths:20
      ~active_path_hops:100
  in
  let large =
    Volume.measure ~num_sats:1000 ~k:10 ~avg_path_hops:15.0 ~demand ~active_paths:20
      ~active_path_hops:100
  in
  Alcotest.(check bool) "larger scale, larger reduction" true
    (large.Volume.reduction > small.Volume.reduction *. 50.0)

let snapshot_at scale time_s =
  let b = Builder.create (Constellation.of_scale scale) in
  Builder.snapshot b ~time_s

let test_wl_identical_graphs () =
  let a = snapshot_at 66 0.0 in
  let b = snapshot_at 66 0.0 in
  let va = Graph_features.vectorize a and vb = Graph_features.vectorize b in
  Alcotest.(check (float 1e-9)) "identical graphs, identical vectors" 1.0
    (Graph_features.cosine va vb)

let test_wl_different_structures () =
  let a = Graph_features.vectorize (snapshot_at 66 0.0) in
  let b = Graph_features.vectorize (snapshot_at 176 0.0) in
  Alcotest.(check bool) "different constellations differ" true
    (Graph_features.cosine a b < 0.999)

let test_wl_similar_snapshots_close () =
  let b66 = Builder.create Constellation.iridium in
  let s0 = Builder.snapshot b66 ~time_s:0.0 in
  let s1 = Builder.snapshot b66 ~time_s:1.0 in
  let other = snapshot_at 176 0.0 in
  let v0 = Graph_features.vectorize s0 in
  let v1 = Graph_features.vectorize s1 in
  let vo = Graph_features.vectorize other in
  Alcotest.(check bool) "adjacent snapshots closer than different constellation" true
    (Graph_features.euclidean v0 v1 <= Graph_features.euclidean v0 vo)

let test_wl_vector_normalised () =
  let v = Graph_features.vectorize (snapshot_at 66 0.0) in
  let norm = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v) in
  Alcotest.(check (float 1e-9)) "unit norm" 1.0 norm;
  Alcotest.(check int) "dimension" Graph_features.dimension (Array.length v)

let test_dpp_selects_k_distinct () =
  let rng = Sate_util.Rng.create 1 in
  let vectors =
    Array.init 30 (fun _ ->
        Array.init 8 (fun _ -> Sate_util.Rng.uniform rng 0.0 1.0))
  in
  let sel = Dpp.select ~vectors ~k:10 () in
  Alcotest.(check int) "k items" 10 (Array.length sel);
  let sorted = Array.copy sel in
  Array.sort compare sorted;
  let uniq = Array.of_list (List.sort_uniq compare (Array.to_list sel)) in
  Alcotest.(check (array int)) "distinct" sorted uniq

let test_dpp_prefers_diversity () =
  (* Two tight clusters: the first two picks must hit both clusters. *)
  let near c = Array.init 4 (fun i -> c +. (0.001 *. float_of_int i)) in
  let vectors =
    [| near 0.0; near 0.01; near 0.02; near 10.0; near 10.01; near 10.02 |]
  in
  let sel = Dpp.select ~vectors ~k:2 () in
  let cluster i = if vectors.(i).(0) < 5.0 then 0 else 1 in
  Alcotest.(check int) "two picks" 2 (Array.length sel);
  Alcotest.(check bool) "one from each cluster" true
    (cluster sel.(0) <> cluster sel.(1))

let test_dpp_deterministic () =
  let rng = Sate_util.Rng.create 2 in
  let vectors =
    Array.init 20 (fun _ -> Array.init 4 (fun _ -> Sate_util.Rng.uniform rng 0.0 1.0))
  in
  let a = Dpp.select ~vectors ~k:5 () in
  let b = Dpp.select ~vectors ~k:5 () in
  Alcotest.(check (array int)) "repeatable" a b

let test_dpp_k_larger_than_n () =
  let vectors = [| [| 0.0 |]; [| 1.0 |] |] in
  let sel = Dpp.select ~vectors ~k:10 () in
  Alcotest.(check bool) "at most n" true (Array.length sel <= 2)

let test_random_baseline () =
  let sel = Dpp.select_random ~seed:1 ~n:50 ~k:10 in
  Alcotest.(check int) "k items" 10 (Array.length sel);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare (Array.to_list sel)))

let suite =
  [ Alcotest.test_case "volume reduction" `Quick test_volume_reduction;
    Alcotest.test_case "volume superlinear" `Quick test_volume_scaling_superlinear;
    Alcotest.test_case "wl identical" `Quick test_wl_identical_graphs;
    Alcotest.test_case "wl different" `Quick test_wl_different_structures;
    Alcotest.test_case "wl similar close" `Quick test_wl_similar_snapshots_close;
    Alcotest.test_case "wl normalised" `Quick test_wl_vector_normalised;
    Alcotest.test_case "dpp k distinct" `Quick test_dpp_selects_k_distinct;
    Alcotest.test_case "dpp diversity" `Quick test_dpp_prefers_diversity;
    Alcotest.test_case "dpp deterministic" `Quick test_dpp_deterministic;
    Alcotest.test_case "dpp k > n" `Quick test_dpp_k_larger_than_n;
    Alcotest.test_case "random baseline" `Quick test_random_baseline ]
