test/test_topology.ml: Alcotest Array Float Fun List Sate_geo Sate_orbit Sate_topology Sate_util
