test/test_orbit.ml: Alcotest Array Float List QCheck QCheck_alcotest Sate_geo Sate_orbit
