test/test_pruning.ml: Alcotest Array Helpers List Sate_orbit Sate_pruning Sate_te Sate_topology Sate_traffic Sate_util
