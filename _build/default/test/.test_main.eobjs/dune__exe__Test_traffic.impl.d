test/test_traffic.ml: Alcotest Array Float Hashtbl List Option QCheck QCheck_alcotest Sate_orbit Sate_topology Sate_traffic Sate_util
