test/test_nn.ml: Alcotest Array Float Sate_nn Sate_tensor Sate_util Tensor
