test/test_integration.ml: Alcotest Array Helpers List Printf Sate_core Sate_gnn Sate_orbit Sate_paths Sate_pruning Sate_te Sate_topology Sate_traffic
