test/test_te.ml: Alcotest Array Float Helpers List QCheck QCheck_alcotest Sate_baselines Sate_te Sate_topology Sate_util
