test/test_extensions.ml: Alcotest Array Float Helpers List Printf Sate_baselines Sate_geo Sate_gnn Sate_orbit Sate_te Sate_traffic Sate_util
