test/test_geo.ml: Alcotest Array Float QCheck QCheck_alcotest Sate_geo Sate_util
