test/test_lp.ml: Alcotest Array QCheck QCheck_alcotest Sate_lp
