test/test_baselines.ml: Alcotest Array Helpers List Sate_baselines Sate_gnn Sate_paths Sate_te
