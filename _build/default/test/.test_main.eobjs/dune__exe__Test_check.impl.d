test/test_check.ml: Alcotest Array Float Helpers List Sate_check Sate_core Sate_lp Sate_nn Sate_te Sate_tensor String Tensor
