test/test_core.ml: Alcotest Array Float List Option Printf Sate_core Sate_orbit Sate_paths Sate_te Sate_topology
