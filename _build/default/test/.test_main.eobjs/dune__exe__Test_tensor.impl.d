test/test_tensor.ml: Alcotest Array Float QCheck QCheck_alcotest Sate_tensor Sate_util Tensor
