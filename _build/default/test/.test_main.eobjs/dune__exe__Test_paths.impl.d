test/test_paths.ml: Alcotest Array List Printf QCheck QCheck_alcotest Sate_geo Sate_orbit Sate_paths Sate_topology
