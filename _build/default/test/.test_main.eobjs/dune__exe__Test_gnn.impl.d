test/test_gnn.ml: Alcotest Array Filename Float Helpers List Printf Sate_gnn Sate_nn Sate_te Sate_tensor Sate_topology Sate_util Sys Tensor
