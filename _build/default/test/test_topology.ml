(* Tests for Sate_topology: spatial index, snapshots, builder rules,
   dynamics analyses. *)

module Geo = Sate_geo.Geo
module Constellation = Sate_orbit.Constellation
module Spatial_index = Sate_topology.Spatial_index
module Link = Sate_topology.Link
module Snapshot = Sate_topology.Snapshot
module Builder = Sate_topology.Builder
module Analysis = Sate_topology.Analysis
module Relay_sites = Sate_topology.Relay_sites
module Rng = Sate_util.Rng

let mk_link u v =
  { Link.u; v; kind = Link.Intra_orbit; capacity_mbps = 200.0; length_km = 100.0 }

let square_snapshot () =
  (* 0-1-2-3 ring. *)
  let pos = Array.init 4 (fun i ->
      Geo.of_lat_lon ~lat_deg:0.0 ~lon_deg:(float_of_int i *. 10.0) ~alt_km:550.0)
  in
  Snapshot.make ~time_s:0.0 ~num_sats:4 ~sat_positions:pos ~relay_positions:[||]
    ~links:[ mk_link 0 1; mk_link 1 2; mk_link 2 3; mk_link 3 0 ]

let test_snapshot_adjacency () =
  let s = square_snapshot () in
  Alcotest.(check int) "degree" 2 (Snapshot.degree s 0);
  Alcotest.(check bool) "0-1 linked" true (Snapshot.find_link s 0 1 <> None);
  Alcotest.(check bool) "0-2 not linked" true (Snapshot.find_link s 0 2 = None);
  Alcotest.(check int) "nodes" 4 (Snapshot.num_nodes s)

let test_snapshot_rejects_self_loop () =
  let pos = Array.make 2 (Geo.of_lat_lon ~lat_deg:0.0 ~lon_deg:0.0 ~alt_km:550.0) in
  Alcotest.check_raises "self loop" (Invalid_argument "Snapshot.make: self-loop")
    (fun () ->
      ignore
        (Snapshot.make ~time_s:0.0 ~num_sats:2 ~sat_positions:pos
           ~relay_positions:[||] ~links:[ mk_link 1 1 ]))

let test_snapshot_rejects_duplicate () =
  let pos = Array.make 2 (Geo.of_lat_lon ~lat_deg:0.0 ~lon_deg:0.0 ~alt_km:550.0) in
  Alcotest.check_raises "duplicate" (Invalid_argument "Snapshot.make: duplicate link")
    (fun () ->
      ignore
        (Snapshot.make ~time_s:0.0 ~num_sats:2 ~sat_positions:pos
           ~relay_positions:[||] ~links:[ mk_link 0 1; mk_link 1 0 ]))

let test_snapshot_equal_and_diff () =
  let a = square_snapshot () in
  let b = square_snapshot () in
  Alcotest.(check bool) "equal" true (Snapshot.equal_topology a b);
  let c = Snapshot.remove_links a [ (0, 1) ] in
  Alcotest.(check bool) "not equal" false (Snapshot.equal_topology a c);
  let added, removed = Snapshot.diff a c in
  Alcotest.(check int) "added" 0 added;
  Alcotest.(check int) "removed" 1 removed

let test_path_valid () =
  let s = square_snapshot () in
  Alcotest.(check bool) "ring path valid" true (Snapshot.path_valid s [ 0; 1; 2 ]);
  Alcotest.(check bool) "chord invalid" false (Snapshot.path_valid s [ 0; 2 ])

let test_spatial_index_vs_brute_force () =
  let rng = Rng.create 99 in
  let pts =
    Array.init 300 (fun _ ->
        Geo.of_lat_lon
          ~lat_deg:(Rng.uniform rng (-60.0) 60.0)
          ~lon_deg:(Rng.uniform rng (-180.0) 180.0)
          ~alt_km:550.0)
  in
  let idx = Spatial_index.build pts in
  for _ = 1 to 50 do
    let q =
      Geo.of_lat_lon
        ~lat_deg:(Rng.uniform rng (-60.0) 60.0)
        ~lon_deg:(Rng.uniform rng (-180.0) 180.0)
        ~alt_km:540.0
    in
    let brute = ref (-1) and brute_d = ref Float.infinity in
    Array.iteri
      (fun i p ->
        let d = Geo.distance q p in
        if d < !brute_d then begin
          brute_d := d;
          brute := i
        end)
      pts;
    match Spatial_index.nearest idx q ~max_km:20000.0 with
    | Some (i, d) ->
        Alcotest.(check int) "same nearest" !brute i;
        Alcotest.(check (float 1e-6)) "same distance" !brute_d d
    | None -> Alcotest.fail "expected a nearest point"
  done

let test_spatial_index_max_km () =
  let pts = [| Geo.of_lat_lon ~lat_deg:0.0 ~lon_deg:0.0 ~alt_km:550.0 |] in
  let idx = Spatial_index.build pts in
  let q = Geo.of_lat_lon ~lat_deg:0.0 ~lon_deg:90.0 ~alt_km:550.0 in
  Alcotest.(check bool) "outside max_km" true (Spatial_index.nearest idx q ~max_km:100.0 = None)

let test_spatial_index_within () =
  let pts =
    Array.init 10 (fun i ->
        Geo.of_lat_lon ~lat_deg:0.0 ~lon_deg:(float_of_int i) ~alt_km:550.0)
  in
  let idx = Spatial_index.build pts in
  let q = pts.(0) in
  let close = Spatial_index.within idx q ~radius_km:200.0 in
  (* 1 degree at 6921 km radius is ~121 km: expect self + neighbour. *)
  Alcotest.(check int) "two within 200km" 2 (List.length close)

let iridium_snapshot () =
  let b = Builder.create Constellation.iridium in
  b, Builder.snapshot b ~time_s:0.0

let test_builder_iridium_structure () =
  let _, s = iridium_snapshot () in
  (* Single shell: only intra/inter-orbit links. *)
  Array.iter
    (fun l ->
      match l.Link.kind with
      | Link.Intra_orbit | Link.Inter_orbit -> ()
      | Link.Cross_shell_laser | Link.Relay -> Alcotest.fail "unexpected cross-shell link")
    s.Snapshot.links;
  (* Every satellite has its two intra-orbit neighbours. *)
  for i = 0 to 65 do
    let intra =
      List.filter
        (fun (_, li) -> s.Snapshot.links.(li).Link.kind = Link.Intra_orbit)
        (Snapshot.neighbors s i)
    in
    Alcotest.(check int) "two intra-orbit links" 2 (List.length intra)
  done

let test_builder_high_latitude_cutoff () =
  let _, s = iridium_snapshot () in
  Array.iter
    (fun l ->
      if l.Link.kind = Link.Inter_orbit then begin
        let lat_u = Float.abs (Geo.latitude_deg s.Snapshot.sat_positions.(l.Link.u)) in
        let lat_v = Float.abs (Geo.latitude_deg s.Snapshot.sat_positions.(l.Link.v)) in
        Alcotest.(check bool) "both endpoints below threshold" true
          (lat_u <= 75.0 && lat_v <= 75.0)
      end)
    s.Snapshot.links

let test_builder_cross_shell_laser_range () =
  let c = Constellation.mid_size ~plane_divisor:8 in
  let b = Builder.create c in
  let s = Builder.snapshot b ~time_s:0.0 in
  let cross =
    Array.to_list s.Snapshot.links
    |> List.filter (fun l -> l.Link.kind = Link.Cross_shell_laser)
  in
  Alcotest.(check bool) "cross-shell links exist" true (cross <> []);
  List.iter
    (fun l ->
      Alcotest.(check bool) "laser within 2000 km" true (l.Link.length_km <= 2000.0))
    cross

let test_builder_relay_elevation () =
  let c = Constellation.mid_size ~plane_divisor:8 in
  let b =
    Builder.create
      ~config:{ Builder.default_config with Builder.cross_shell = Builder.Ground_relays }
      c
  in
  let s = Builder.snapshot b ~time_s:0.0 in
  let relays =
    Array.to_list s.Snapshot.links |> List.filter (fun l -> l.Link.kind = Link.Relay)
  in
  Alcotest.(check bool) "relay links exist" true (relays <> []);
  List.iter
    (fun l ->
      let sat, relay = if l.Link.u < s.Snapshot.num_sats then (l.Link.u, l.Link.v) else (l.Link.v, l.Link.u) in
      let elev =
        Geo.elevation_angle_deg
          ~ground:(Snapshot.position s relay)
          ~sat:(Snapshot.position s sat)
      in
      Alcotest.(check bool) "elevation >= 25" true (elev >= 25.0))
    relays

let test_builder_time_monotonic () =
  let b = Builder.create Constellation.iridium in
  ignore (Builder.snapshot b ~time_s:10.0);
  Alcotest.check_raises "decreasing time"
    (Invalid_argument "Builder.snapshot: time must be non-decreasing (use reset)")
    (fun () -> ignore (Builder.snapshot b ~time_s:5.0));
  Builder.reset b;
  ignore (Builder.snapshot b ~time_s:0.0)

let test_builder_hysteresis_stability () =
  (* Two consecutive close snapshots should share most links. *)
  let c = Constellation.mid_size ~plane_divisor:8 in
  let b = Builder.create c in
  let s1 = Builder.snapshot b ~time_s:0.0 in
  let s2 = Builder.snapshot b ~time_s:0.0125 in
  let added, removed = Snapshot.diff s1 s2 in
  let total = Array.length s1.Snapshot.links in
  Alcotest.(check bool) "churn under 2%" true
    (float_of_int (added + removed) < 0.02 *. float_of_int total)

let test_relay_sites () =
  let sites = Relay_sites.generate ~seed:5 () in
  Alcotest.(check int) "222 sites" 222 (Array.length sites);
  Array.iter
    (fun p ->
      Alcotest.(check (float 1.0)) "on the surface" Geo.earth_radius_km (Geo.norm p))
    sites

let test_holding_times () =
  let b = Builder.create Constellation.iridium in
  let ht = Analysis.holding_times_ms b ~start_s:0.0 ~dt_s:1.0 ~count:30 in
  let total = Array.fold_left ( +. ) 0.0 ht in
  Alcotest.(check (float 1e-6)) "runs cover the window" 30_000.0 total;
  Array.iter (fun h -> Alcotest.(check bool) "positive" true (h > 0.0)) ht

let test_exclusion_monotonic () =
  let c = Constellation.mid_size ~plane_divisor:8 in
  let b = Builder.create c in
  let series =
    Analysis.exclusion_series b ~start_s:0.0 ~dt_s:5.0 ~intervals:[ 1; 4; 16 ]
  in
  Alcotest.(check int) "three points" 3 (List.length series);
  let ratios = List.map snd series in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "longer interval excludes more" true (non_decreasing ratios);
  List.iter
    (fun (_, r) -> Alcotest.(check bool) "ratio in [0,1]" true (r >= 0.0 && r <= 1.0))
    series

let test_path_obsolescence () =
  let b = Builder.create Constellation.iridium in
  let s0 = Builder.snapshot b ~time_s:0.0 in
  Builder.reset b;
  (* Pick some currently valid 2-hop paths. *)
  let paths =
    List.filter_map
      (fun i ->
        match Snapshot.neighbors s0 i with
        | (a, _) :: (b, _) :: _ -> Some [ a; i; b ]
        | _ -> None)
      (List.init 20 Fun.id)
  in
  let series =
    Analysis.path_obsolescence b ~start_s:0.0 ~dt_s:30.0 ~checkpoints:[ 1; 10 ] ~paths
  in
  (match series with
  | [ (_, f1); (_, f10) ] ->
      Alcotest.(check (float 1e-9)) "fresh paths valid" 0.0 f1;
      Alcotest.(check bool) "obsolescence grows" true (f10 >= f1)
  | _ -> Alcotest.fail "expected two checkpoints")

let test_random_failures () =
  let _, s = iridium_snapshot () in
  let rng = Rng.create 3 in
  let degraded, failed = Analysis.random_link_failures s ~rate:0.3 rng in
  Alcotest.(check bool) "some links failed" true (failed <> []);
  Alcotest.(check int) "links removed"
    (Array.length s.Snapshot.links - List.length failed)
    (Array.length degraded.Snapshot.links);
  let _, none = Analysis.random_link_failures s ~rate:0.0 rng in
  Alcotest.(check int) "zero rate" 0 (List.length none)

let suite =
  [ Alcotest.test_case "snapshot adjacency" `Quick test_snapshot_adjacency;
    Alcotest.test_case "reject self-loop" `Quick test_snapshot_rejects_self_loop;
    Alcotest.test_case "reject duplicate" `Quick test_snapshot_rejects_duplicate;
    Alcotest.test_case "equal and diff" `Quick test_snapshot_equal_and_diff;
    Alcotest.test_case "path valid" `Quick test_path_valid;
    Alcotest.test_case "spatial index correct" `Quick test_spatial_index_vs_brute_force;
    Alcotest.test_case "spatial index max_km" `Quick test_spatial_index_max_km;
    Alcotest.test_case "spatial index within" `Quick test_spatial_index_within;
    Alcotest.test_case "iridium structure" `Quick test_builder_iridium_structure;
    Alcotest.test_case "high latitude cutoff" `Quick test_builder_high_latitude_cutoff;
    Alcotest.test_case "cross-shell laser range" `Quick test_builder_cross_shell_laser_range;
    Alcotest.test_case "relay elevation" `Quick test_builder_relay_elevation;
    Alcotest.test_case "time monotonic" `Quick test_builder_time_monotonic;
    Alcotest.test_case "hysteresis stability" `Quick test_builder_hysteresis_stability;
    Alcotest.test_case "relay sites" `Quick test_relay_sites;
    Alcotest.test_case "holding times" `Quick test_holding_times;
    Alcotest.test_case "exclusion monotonic" `Quick test_exclusion_monotonic;
    Alcotest.test_case "path obsolescence" `Quick test_path_obsolescence;
    Alcotest.test_case "random failures" `Quick test_random_failures ]
