(* Tests for the extension surface: demand estimation (Appendix D),
   fairness objectives (Eq. 3 / Appendix H.4), fine-tuning (Sec. 7),
   and J2 orbital perturbation. *)

module Estimator = Sate_traffic.Estimator
module Flow_class = Sate_traffic.Flow_class
module Demand = Sate_traffic.Demand
module Max_min = Sate_baselines.Max_min
module Ecmp_wf = Sate_baselines.Ecmp_wf
module Lp_solver = Sate_te.Lp_solver
module Allocation = Sate_te.Allocation
module Instance = Sate_te.Instance
module Shell = Sate_orbit.Shell
module Geo = Sate_geo.Geo
module Model = Sate_gnn.Model
module Trainer = Sate_gnn.Trainer
module Stats = Sate_util.Stats

(* --- Appendix D demand estimation --- *)

let test_estimator_persistent () =
  List.iter
    (fun cls ->
      Alcotest.(check (float 1e-9))
        (Flow_class.to_string cls)
        (Flow_class.demand_mbps cls)
        (Estimator.estimate_mbps ~now_s:100.0 ~start_s:0.0 (Estimator.Persistent cls)))
    Flow_class.all

let test_estimator_background () =
  (* 100 MB due in 100 s from start, estimated at t = 20: 800 Mbit
     over 80 s = 10 Mbps. *)
  let d =
    Estimator.estimate_mbps ~now_s:20.0 ~start_s:0.0
      (Estimator.Background { volume_mb = 100.0; deadline_s = 100.0 })
  in
  Alcotest.(check (float 1e-9)) "10 Mbps" 10.0 d;
  (* Past the deadline the estimate collapses to zero. *)
  let late =
    Estimator.estimate_mbps ~now_s:200.0 ~start_s:0.0
      (Estimator.Background { volume_mb = 100.0; deadline_s = 100.0 })
  in
  Alcotest.(check (float 0.0)) "expired" 0.0 late

let test_estimator_background_urgency () =
  (* The same transfer demands more as its deadline nears. *)
  let at now =
    Estimator.estimate_mbps ~now_s:now ~start_s:0.0
      (Estimator.Background { volume_mb = 50.0; deadline_s = 100.0 })
  in
  Alcotest.(check bool) "urgency grows" true (at 80.0 > at 10.0)

let test_estimator_bursty_implicit () =
  Alcotest.(check (float 0.0)) "bursty unaccounted" 0.0
    (Estimator.estimate_mbps ~now_s:0.0 ~start_s:0.0 Estimator.Bursty)

let test_estimator_aggregate () =
  let flows =
    [ (0, 1, 0.0, Estimator.Persistent Flow_class.Video);
      (0, 1, 0.0, Estimator.Persistent Flow_class.Voice);
      (2, 3, 0.0, Estimator.Bursty) ]
  in
  let d = Estimator.aggregate ~now_s:10.0 flows ~num_sats:5 in
  Alcotest.(check int) "bursty entry dropped" 1 (Demand.num_entries d);
  Alcotest.(check (float 1e-9)) "aggregated" 8.064 (Demand.find d ~src:0 ~dst:1)

(* --- Fairness: max-min filling and log-utility LP --- *)

let test_max_min_feasible () =
  let inst = Helpers.congested_instance () in
  let alloc = Max_min.solve inst in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst alloc)

let test_max_min_reduces_starvation () =
  let inst = Helpers.congested_instance () in
  let starved a =
    Allocation.per_commodity_ratio inst a
    |> Array.fold_left (fun acc r -> if r < 0.05 then acc + 1 else acc) 0
  in
  let mm = starved (Max_min.solve inst) in
  let bp = starved (Sate_baselines.Satellite_routing.solve inst) in
  Alcotest.(check bool)
    (Printf.sprintf "max-min starves fewer flows (%d <= %d)" mm bp)
    true (mm <= bp)

let test_max_min_uses_all_paths () =
  (* Unlike ECMP, max-min may spread onto longer candidate paths. *)
  let inst = Helpers.congested_instance () in
  let mm = Allocation.total_flow (Max_min.solve inst) in
  let ecmp = Allocation.total_flow (Ecmp_wf.solve inst) in
  Alcotest.(check bool) "all-path filling carries at least min-hop filling" true
    (mm >= ecmp *. 0.8)

(* Log-utility LPs double the variable count: keep the instance small. *)
let utility_instance () = Helpers.iridium_instance ~lambda:12.0 ~warmup:25.0 ()

let test_log_utility_feasible_and_fair () =
  let inst = utility_instance () in
  let alloc, utility = Lp_solver.solve_with_value ~objective:Lp_solver.Max_log_utility inst in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst alloc);
  Alcotest.(check bool) "finite utility" true (Float.is_finite utility);
  (* Soft fairness: compared to raw throughput maximisation, the
     bottom decile of flows must not be worse. *)
  let p10 a = Stats.percentile (Allocation.per_commodity_ratio inst a) 10.0 in
  let thr = Lp_solver.solve inst in
  Alcotest.(check bool)
    (Printf.sprintf "log utility lifts the poorest flows (%.3f >= %.3f)"
       (p10 alloc) (p10 thr))
    true
    (p10 alloc >= p10 thr -. 1e-6)

let test_log_utility_below_throughput_optimum () =
  let inst = utility_instance () in
  let thr = Allocation.total_flow (Lp_solver.solve inst) in
  let util = Allocation.total_flow (Lp_solver.solve ~objective:Lp_solver.Max_log_utility inst) in
  Alcotest.(check bool) "fairness costs at most the optimum" true (util <= thr +. 1e-6)

(* --- J2 perturbation --- *)

let shell =
  Shell.make ~altitude_km:550.0 ~inclination_deg:53.0 ~planes:24 ~sats_per_plane:22 ()

let test_j2_nodal_regression_sign () =
  Alcotest.(check bool) "prograde shell regresses westward" true
    (Shell.raan_drift_rad_s shell < 0.0);
  let polar =
    Shell.make ~altitude_km:560.0 ~inclination_deg:97.6 ~planes:6 ~sats_per_plane:58 ()
  in
  Alcotest.(check bool) "retrograde-leaning shell drifts eastward" true
    (Shell.raan_drift_rad_s polar > 0.0)

let test_j2_magnitude () =
  (* Starlink-like shells regress around 5 degrees/day. *)
  let per_day = Shell.raan_drift_rad_s shell *. 86400.0 *. 180.0 /. Float.pi in
  Alcotest.(check bool)
    (Printf.sprintf "drift %.2f deg/day in [-6, -4]" per_day)
    true
    (per_day < -4.0 && per_day > -6.0)

let test_j2_matches_kepler_at_t0 () =
  let a = Shell.position shell ~plane:3 ~slot:5 ~time_s:0.0 in
  let b = Shell.position_j2 shell ~plane:3 ~slot:5 ~time_s:0.0 in
  Alcotest.(check (float 1e-9)) "identical at epoch" 0.0 (Geo.distance a b)

let test_j2_diverges_over_time () =
  let t = 6.0 *. 3600.0 in
  let a = Shell.position shell ~plane:3 ~slot:5 ~time_s:t in
  let b = Shell.position_j2 shell ~plane:3 ~slot:5 ~time_s:t in
  Alcotest.(check bool) "tens of km after 6 h" true (Geo.distance a b > 10.0);
  Alcotest.(check (float 1e-6)) "same radius"
    (Geo.norm a) (Geo.norm b)

(* --- Fine-tuning --- *)

let test_fine_tune_improves_on_target () =
  let samples = List.map Trainer.make_sample (Helpers.instance_series ~count:3 ~seed:55 ()) in
  let model = Model.create ~seed:14 () in
  ignore (Trainer.train ~epochs:10 model samples);
  let before = Trainer.evaluate model samples in
  ignore (Trainer.fine_tune ~epochs:8 model samples);
  let after = Trainer.evaluate model samples in
  Alcotest.(check bool)
    (Printf.sprintf "fine-tune does not regress (%.3f -> %.3f)" before after)
    true
    (after >= before -. 0.05)

let suite =
  [ Alcotest.test_case "estimator persistent" `Quick test_estimator_persistent;
    Alcotest.test_case "estimator background" `Quick test_estimator_background;
    Alcotest.test_case "estimator urgency" `Quick test_estimator_background_urgency;
    Alcotest.test_case "estimator bursty" `Quick test_estimator_bursty_implicit;
    Alcotest.test_case "estimator aggregate" `Quick test_estimator_aggregate;
    Alcotest.test_case "max-min feasible" `Quick test_max_min_feasible;
    Alcotest.test_case "max-min starvation" `Quick test_max_min_reduces_starvation;
    Alcotest.test_case "max-min vs ecmp" `Quick test_max_min_uses_all_paths;
    Alcotest.test_case "log utility fair" `Quick test_log_utility_feasible_and_fair;
    Alcotest.test_case "log utility bounded" `Quick test_log_utility_below_throughput_optimum;
    Alcotest.test_case "j2 regression sign" `Quick test_j2_nodal_regression_sign;
    Alcotest.test_case "j2 magnitude" `Quick test_j2_magnitude;
    Alcotest.test_case "j2 epoch match" `Quick test_j2_matches_kepler_at_t0;
    Alcotest.test_case "j2 divergence" `Quick test_j2_diverges_over_time;
    Alcotest.test_case "fine-tune" `Slow test_fine_tune_improves_on_target ]
