(* Tests for Sate_core: scenarios, method dispatch, online/offline
   evaluation, control-plane analysis. *)

module Scenario = Sate_core.Scenario
module Method = Sate_core.Method
module Online = Sate_core.Online
module Offline = Sate_core.Offline
module Control_plane = Sate_core.Control_plane
module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Builder = Sate_topology.Builder
module Constellation = Sate_orbit.Constellation

let quick_scenario ?(lambda = 5.0) () =
  Scenario.create
    ~config:{ Scenario.default_config with Scenario.lambda; warmup_s = 20.0 }
    ()

let test_scenario_instances () =
  let s = quick_scenario () in
  let i0 = Scenario.instance_at s ~time_s:0.0 in
  Alcotest.(check bool) "commodities" true (Instance.num_commodities i0 > 0);
  let i1 = Scenario.instance_at s ~time_s:1.0 in
  Alcotest.(check bool) "still has commodities" true (Instance.num_commodities i1 > 0);
  Alcotest.(check bool) "path db exists" true (Scenario.path_db s <> None)

let test_scenario_incremental_updates () =
  let s = quick_scenario () in
  ignore (Scenario.instance_at s ~time_s:0.0);
  ignore (Scenario.instance_at s ~time_s:1.0);
  let n_pairs, _ = Sate_paths.Path_db.stats (Option.get (Scenario.path_db s)) in
  (* Over one second very few pairs should need recomputation
     (the paper reports < 2%). *)
  Alcotest.(check bool) "few recomputes" true
    (Scenario.last_path_recompute_count s <= max 2 (n_pairs / 10))

let test_method_names () =
  Alcotest.(check string) "lp" "lp-optimal" (Method.name Method.Lp);
  Alcotest.(check string) "pop" "pop-4" (Method.name (Method.Pop 4));
  Alcotest.(check string) "ecmp" "ecmp-wf" (Method.name Method.Ecmp_wf);
  Alcotest.(check bool) "routing is distributed" false
    (Method.is_centralized Method.Satellite_routing)

let test_method_solve_timed () =
  let s = quick_scenario () in
  let inst = Scenario.instance_at s ~time_s:0.0 in
  List.iter
    (fun m ->
      let alloc, ms = Method.solve_timed m inst in
      Alcotest.(check bool)
        (Method.name m ^ " feasible")
        true (Allocation.is_feasible inst alloc);
      Alcotest.(check bool) (Method.name m ^ " latency nonneg") true (ms >= 0.0))
    [ Method.Lp; Method.Pop 2; Method.Ecmp_wf; Method.Satellite_routing ]

let test_carryover_identity () =
  let s = quick_scenario () in
  let inst = Scenario.instance_at s ~time_s:0.0 in
  let alloc = Sate_te.Lp_solver.solve inst in
  let carried = Online.carryover inst alloc inst in
  (* Same instance: nothing should be lost. *)
  Alcotest.(check (float 1e-6)) "identity carryover"
    (Allocation.total_flow alloc) (Allocation.total_flow carried)

let test_carryover_respects_new_topology () =
  let s = quick_scenario () in
  let i0 = Scenario.instance_at s ~time_s:0.0 in
  let alloc = Sate_te.Lp_solver.solve i0 in
  let i1 = Scenario.instance_at s ~time_s:30.0 in
  let carried = Online.carryover i0 alloc i1 in
  Alcotest.(check bool) "feasible on new instance" true
    (Allocation.is_feasible i1 carried)

let test_online_fast_beats_slow_same_method () =
  (* The same LP allocator with a 0 ms vs 40 s simulated latency:
     lower latency must never be worse. *)
  let run latency =
    let s = quick_scenario () in
    Online.evaluate ~latency_override_ms:latency ~duration_s:20.0 s Method.Lp
  in
  let fast = run 1.0 in
  let slow = run 40_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "fast (%.3f) >= slow (%.3f)" fast.Online.mean_satisfied
       slow.Online.mean_satisfied)
    true
    (fast.Online.mean_satisfied >= slow.Online.mean_satisfied -. 0.02);
  Alcotest.(check bool) "fast recomputes more" true
    (fast.Online.recomputations > slow.Online.recomputations)

let test_online_report_fields () =
  let s = quick_scenario () in
  let r = Online.evaluate ~duration_s:5.0 s Method.Ecmp_wf in
  Alcotest.(check string) "name" "ecmp-wf" r.Online.method_name;
  Alcotest.(check int) "five ticks" 5 (List.length r.Online.per_tick);
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) "satisfied in [0,1]" true (v >= 0.0 && v <= 1.0 +. 1e-9))
    r.Online.per_tick

let test_offline_lp_is_best () =
  let s = quick_scenario ~lambda:20.0 () in
  let instances = [ Scenario.instance_at s ~time_s:0.0 ] in
  let lp = Offline.satisfied Method.Lp instances in
  let ecmp = Offline.satisfied Method.Ecmp_wf instances in
  let routing = Offline.satisfied Method.Satellite_routing instances in
  Alcotest.(check bool) "lp >= ecmp" true (lp >= ecmp -. 1e-9);
  Alcotest.(check bool) "lp >= routing" true (lp >= routing -. 1e-9)

let test_offline_mlu () =
  let s = quick_scenario () in
  let instances = [ Scenario.instance_at s ~time_s:0.0 ] in
  let lp_mlu = Offline.mlu Method.Lp instances in
  let ecmp_mlu = Offline.mlu Method.Ecmp_wf instances in
  Alcotest.(check bool) "mlu values sane" true (lp_mlu >= 0.0 && ecmp_mlu >= 0.0)

let test_per_flow_ratios () =
  let s = quick_scenario () in
  let inst = Scenario.instance_at s ~time_s:0.0 in
  let ratios = Offline.per_flow_ratios Method.Lp inst in
  Alcotest.(check int) "per commodity" (Instance.num_commodities inst) (Array.length ratios)

let control_plane_snapshot () =
  (* 396-satellite mid-size constellation: dense enough that some
     satellite is always above Houston's 25-degree elevation mask. *)
  let b = Builder.create (Constellation.of_scale 396) in
  Builder.snapshot b ~time_s:0.0

let test_control_plane_delays () =
  let snap = control_plane_snapshot () in
  let delays = Control_plane.rule_distribution_delays_ms snap in
  Alcotest.(check int) "one delay per satellite" 396 (Array.length delays);
  let finite = Array.to_list delays |> List.filter Float.is_finite in
  Alcotest.(check bool) "most satellites reachable" true
    (List.length finite > 300);
  List.iter
    (fun d -> Alcotest.(check bool) "delay in (0, 500) ms" true (d > 0.0 && d < 500.0))
    finite

let test_control_plane_direct_faster () =
  let snap = control_plane_snapshot () in
  let delays = Control_plane.rule_distribution_delays_ms snap in
  let finite = Array.to_list delays |> List.filter Float.is_finite in
  let lo = List.fold_left Float.min Float.infinity finite in
  (* A satellite overhead Houston at ~550 km: a couple of ms. *)
  Alcotest.(check bool) "direct satellites very fast" true (lo < 15.0)

let test_rule_count () =
  let s = quick_scenario () in
  let inst = Scenario.instance_at s ~time_s:0.0 in
  let rules = Control_plane.rule_count_estimate inst in
  Alcotest.(check bool) "at least one rule per path" true
    (rules >= Instance.num_paths inst)

let suite =
  [ Alcotest.test_case "scenario instances" `Quick test_scenario_instances;
    Alcotest.test_case "incremental updates" `Quick test_scenario_incremental_updates;
    Alcotest.test_case "method names" `Quick test_method_names;
    Alcotest.test_case "method solve_timed" `Quick test_method_solve_timed;
    Alcotest.test_case "carryover identity" `Quick test_carryover_identity;
    Alcotest.test_case "carryover new topology" `Quick test_carryover_respects_new_topology;
    Alcotest.test_case "online fast beats slow" `Slow test_online_fast_beats_slow_same_method;
    Alcotest.test_case "online report" `Quick test_online_report_fields;
    Alcotest.test_case "offline lp best" `Quick test_offline_lp_is_best;
    Alcotest.test_case "offline mlu" `Quick test_offline_mlu;
    Alcotest.test_case "per flow ratios" `Quick test_per_flow_ratios;
    Alcotest.test_case "control plane delays" `Quick test_control_plane_delays;
    Alcotest.test_case "direct satellites fast" `Quick test_control_plane_direct_faster;
    Alcotest.test_case "rule count" `Quick test_rule_count ]
