(* Tests for Sate_baselines: ECMP+WF, POP, satellite routing,
   Teal-like, HARP-like. *)

module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Lp_solver = Sate_te.Lp_solver
module Ecmp_wf = Sate_baselines.Ecmp_wf
module Pop = Sate_baselines.Pop
module Satellite_routing = Sate_baselines.Satellite_routing
module Teal_like = Sate_baselines.Teal_like
module Harp_like = Sate_baselines.Harp_like

let test_ecmp_feasible () =
  let inst = Helpers.congested_instance () in
  let alloc = Ecmp_wf.solve inst in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst alloc)

let test_ecmp_light_load_full_satisfaction () =
  let inst = Helpers.iridium_instance ~lambda:2.0 ~warmup:10.0 () in
  let alloc = Ecmp_wf.solve inst in
  Alcotest.(check bool) "satisfies nearly all at light load" true
    (Allocation.satisfied_ratio inst alloc > 0.95)

let test_ecmp_uses_min_hop_paths () =
  let inst = Helpers.iridium_instance () in
  let alloc = Ecmp_wf.solve inst in
  Array.iteri
    (fun f rates ->
      let c = inst.Instance.commodities.(f) in
      if Array.length c.Instance.paths > 0 then begin
        let min_hops =
          Array.fold_left (fun acc p -> min acc (Sate_paths.Path.hops p)) max_int
            c.Instance.paths
        in
        Array.iteri
          (fun p r ->
            if r > 1e-9 then
              Alcotest.(check int) "only min-hop paths used" min_hops
                (Sate_paths.Path.hops c.Instance.paths.(p)))
          rates
      end)
    alloc

let test_ecmp_below_lp () =
  let inst = Helpers.congested_instance () in
  let lp = Allocation.total_flow (Lp_solver.solve inst) in
  let ecmp = Allocation.total_flow (Ecmp_wf.solve inst) in
  Alcotest.(check bool) "ecmp <= lp optimum" true (ecmp <= lp +. 1e-6)

let test_pop_feasible_and_suboptimal () =
  let inst = Helpers.congested_instance () in
  let alloc, latency_ms = Pop.solve_timed ~k:4 inst in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst alloc);
  Alcotest.(check bool) "latency measured" true (latency_ms > 0.0);
  let lp = Allocation.total_flow (Lp_solver.solve inst) in
  Alcotest.(check bool) "pop <= lp" true (Allocation.total_flow alloc <= lp +. 1e-6)

let test_pop_partitions_cover_all () =
  let inst = Helpers.iridium_instance ~lambda:2.0 ~warmup:10.0 () in
  (* Light load: even with 1/k capacities every partition fits, so POP
     should satisfy nearly everything. *)
  let alloc = Pop.solve ~k:2 inst in
  Alcotest.(check bool) "near full satisfaction" true
    (Allocation.satisfied_ratio inst alloc > 0.9)

let test_satellite_routing_feasible () =
  let inst = Helpers.congested_instance () in
  let alloc = Satellite_routing.solve inst in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst alloc)

let test_satellite_routing_worst_under_load () =
  let inst = Helpers.congested_instance () in
  let bp = Allocation.total_flow (Satellite_routing.solve inst) in
  let lp = Allocation.total_flow (Lp_solver.solve inst) in
  Alcotest.(check bool) "below optimum under load" true (bp <= lp +. 1e-6)

let test_teal_scale_mismatch () =
  let inst = Helpers.iridium_instance () in
  let model = Teal_like.create ~num_sats:176 ~k:3 () in
  (try
     ignore (Teal_like.predict model inst);
     Alcotest.fail "expected scale mismatch failure"
   with Invalid_argument _ -> ())

let test_teal_input_volume_quadratic () =
  let small = Teal_like.create ~num_sats:66 ~k:10 () in
  let big = Teal_like.create ~num_sats:660 ~k:10 () in
  Alcotest.(check int) "100x input volume"
    (100 * Teal_like.input_volume_bytes small)
    (Teal_like.input_volume_bytes big)

let test_teal_train_and_predict () =
  let instances = Helpers.instance_series ~count:2 () in
  let model = Teal_like.create ~num_sats:66 ~k:3 () in
  let seconds = Teal_like.train ~epochs:3 model instances in
  Alcotest.(check bool) "training ran" true (seconds > 0.0);
  let inst = List.hd instances in
  let alloc = Teal_like.predict model inst in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst alloc)

let test_harp_train_and_predict () =
  let instances = Helpers.instance_series ~count:2 () in
  let model = Harp_like.create ~seed:1 () in
  let seconds = Harp_like.train ~epochs:2 model instances in
  Alcotest.(check bool) "training ran" true (seconds > 0.0);
  let inst = List.hd instances in
  let alloc = Harp_like.predict model inst in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst alloc)

let test_harp_has_more_parameters_than_sate () =
  let sate = Sate_gnn.Model.create ~seed:1 () in
  let harp = Harp_like.create ~seed:1 () in
  Alcotest.(check bool) "harp adds transformer stage params" true
    (Harp_like.num_parameters harp > Sate_gnn.Model.num_parameters sate)

let suite =
  [ Alcotest.test_case "ecmp feasible" `Quick test_ecmp_feasible;
    Alcotest.test_case "ecmp light load" `Quick test_ecmp_light_load_full_satisfaction;
    Alcotest.test_case "ecmp min-hop only" `Quick test_ecmp_uses_min_hop_paths;
    Alcotest.test_case "ecmp below lp" `Quick test_ecmp_below_lp;
    Alcotest.test_case "pop feasible" `Quick test_pop_feasible_and_suboptimal;
    Alcotest.test_case "pop light load" `Quick test_pop_partitions_cover_all;
    Alcotest.test_case "satellite routing feasible" `Quick test_satellite_routing_feasible;
    Alcotest.test_case "satellite routing under load" `Quick test_satellite_routing_worst_under_load;
    Alcotest.test_case "teal scale mismatch" `Quick test_teal_scale_mismatch;
    Alcotest.test_case "teal input quadratic" `Quick test_teal_input_volume_quadratic;
    Alcotest.test_case "teal train/predict" `Slow test_teal_train_and_predict;
    Alcotest.test_case "harp train/predict" `Slow test_harp_train_and_predict;
    Alcotest.test_case "harp parameter count" `Quick test_harp_has_more_parameters_than_sate ]
