(* Tests for Sate_check: finite-difference gradient checking, LP
   certificate verification, allocation invariant auditing, and the
   online harness debug mode. *)

module Grad_check = Sate_check.Grad_check
module Lp_check = Sate_check.Lp_check
module Invariant = Sate_check.Invariant
module Certificate = Sate_lp.Certificate
module Simplex = Sate_lp.Simplex
module Lp_solver = Sate_te.Lp_solver
module Allocation = Sate_te.Allocation
module Scenario = Sate_core.Scenario
module Online = Sate_core.Online
module Method = Sate_core.Method
module A = Sate_nn.Autodiff
open Sate_tensor

let check_all_passed results =
  Alcotest.(check int) "no gradient failures" 0
    (List.length (Grad_check.failures results));
  List.iter
    (fun r ->
      Alcotest.(check bool) (Grad_check.result_to_string r) true
        r.Grad_check.passed)
    results

(* Acceptance criterion: every Autodiff op matches central differences
   at relative error < 1e-4 (the checker's default tolerance). *)
let test_all_ops () =
  let results = Grad_check.all_ops () in
  Alcotest.(check bool) "covers the op set" true (List.length results >= 20);
  check_all_passed results;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Grad_check.name ^ " below default tol")
        true
        (r.Grad_check.max_rel_err < Grad_check.default_tol))
    results

let test_all_ops_deterministic () =
  Alcotest.(check bool) "same seed, same report" true
    (Grad_check.all_ops ~seed:3 () = Grad_check.all_ops ~seed:3 ())

let test_gat_layer_attention () = check_all_passed (Grad_check.gat_layer ())

let test_gat_layer_mean () =
  check_all_passed (Grad_check.gat_layer ~attention:false ())

let test_catches_broken_backward () =
  (* Sabotage the square adjoint: claim d(x^2)/dx = x instead of 2x.
     The node's [back] is mutable precisely so a test can do this. *)
  let build x =
    let y = A.square x in
    y.A.back <-
      (fun () -> x.A.grad <- Tensor.add x.A.grad (Tensor.mul x.A.value y.A.grad));
    A.sum y
  in
  let x0 = Tensor.of_array ~rows:2 ~cols:2 [| 0.5; -1.0; 2.0; 1.5 |] in
  let r = Grad_check.check ~name:"broken square" ~build x0 in
  Alcotest.(check bool) "broken backward flagged" false r.Grad_check.passed;
  Alcotest.(check bool) "error is gross" true (r.Grad_check.max_rel_err > 0.1)

let lp_c = [| 3.0; 2.0 |]

let lp_constraints =
  [ { Simplex.coeffs = [| 1.0; 1.0 |]; sense = Simplex.Le; rhs = 4.0 };
    { Simplex.coeffs = [| 1.0; 3.0 |]; sense = Simplex.Le; rhs = 6.0 } ]

let test_certificate_accepts_valid () =
  match Lp_check.certified ~c:lp_c ~constraints:lp_constraints () with
  | Ok (Simplex.Optimal { objective; _ }) ->
      Alcotest.(check (float 1e-6)) "objective" 12.0 objective
  | Ok _ -> Alcotest.fail "expected Optimal"
  | Error msg -> Alcotest.fail msg

let test_certificate_rejects_tampered_solution () =
  (* x = 5 violates x + y <= 4 and changes the objective. *)
  let outcome =
    Simplex.Optimal { objective = 12.0; solution = [| 5.0; 0.0 |] }
  in
  match Lp_check.check_outcome ~c:lp_c ~constraints:lp_constraints outcome with
  | None -> Alcotest.fail "expected a report"
  | Some report ->
      Alcotest.(check bool) "invalid" false (Certificate.valid report);
      Alcotest.(check bool) "constraint violation found" true
        (List.exists
           (function
             | Certificate.Constraint_violated { index = 0; excess; _ } ->
                 Float.abs (excess -. 1.0) < 1e-9
             | _ -> false)
           report.Certificate.violations);
      Alcotest.(check bool) "objective mismatch found" true
        (List.exists
           (function Certificate.Objective_mismatch _ -> true | _ -> false)
           report.Certificate.violations);
      Alcotest.(check (float 1e-9)) "recomputed objective" 15.0
        report.Certificate.recomputed_objective

let test_certificate_rejects_negative_variable () =
  let outcome =
    Simplex.Optimal { objective = -3.0; solution = [| -1.0; 0.0 |] }
  in
  match Lp_check.check_outcome ~c:lp_c ~constraints:lp_constraints outcome with
  | None -> Alcotest.fail "expected a report"
  | Some report ->
      Alcotest.(check bool) "invalid" false (Certificate.valid report);
      Alcotest.(check bool) "negative variable found" true
        (List.exists
           (function
             | Certificate.Negative_variable { index = 0; _ } -> true
             | _ -> false)
           report.Certificate.violations)

let test_certificate_ignores_non_optimal () =
  Alcotest.(check bool) "no report for Infeasible" true
    (Lp_check.check_outcome ~c:lp_c ~constraints:lp_constraints
       Simplex.Infeasible
    = None)

let test_verify_instance_all_objectives () =
  List.iter
    (fun inst ->
      List.iter
        (fun objective ->
          match Lp_check.verify_instance ~objective inst with
          | Ok v -> Alcotest.(check bool) "finite value" true (Float.is_finite v)
          | Error msg -> Alcotest.fail msg)
        [ Lp_solver.Max_throughput; Lp_solver.Min_mlu; Lp_solver.Max_log_utility ])
    [ Helpers.iridium_instance (); Helpers.congested_instance () ]

let test_invariant_feasible () =
  let inst = Helpers.iridium_instance () in
  let lp = Lp_solver.solve inst in
  Alcotest.(check int) "no violations" 0 (List.length (Invariant.check inst lp));
  Alcotest.(check string) "summary" "feasible"
    (Invariant.summary (Invariant.check inst lp));
  Invariant.assert_feasible inst lp

let test_invariant_flags_corruption () =
  let inst = Helpers.iridium_instance () in
  let alloc = Lp_solver.solve inst in
  alloc.(0).(0) <- -2.0;
  let vs = Invariant.check inst alloc in
  Alcotest.(check bool) "violations reported" true (vs <> []);
  Alcotest.(check bool) "summary names the violation" true
    (Invariant.summary vs <> "feasible");
  match Invariant.assert_feasible inst alloc with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      Alcotest.(check bool) "message mentions infeasibility" true
        (String.length msg > 0)

(* Acceptance criterion: the online harness in debug mode reports zero
   invariant violations on a quickstart-style scenario. *)
let test_online_debug_zero_violations () =
  let s =
    Scenario.create
      ~config:
        { Scenario.default_config with Scenario.lambda = 5.0; warmup_s = 20.0 }
      ()
  in
  let r =
    Online.evaluate ~debug:true ~latency_override_ms:1.0 ~duration_s:5.0 s
      Method.Lp
  in
  Alcotest.(check int) "zero violations" 0 r.Online.debug_violations;
  Alcotest.(check bool) "harness actually ran" true
    (List.length r.Online.per_tick = 5 && r.Online.recomputations > 0)

let suite =
  [ Alcotest.test_case "grad all ops" `Quick test_all_ops;
    Alcotest.test_case "grad deterministic" `Quick test_all_ops_deterministic;
    Alcotest.test_case "grad gat attention" `Quick test_gat_layer_attention;
    Alcotest.test_case "grad gat mean" `Quick test_gat_layer_mean;
    Alcotest.test_case "grad catches broken backward" `Quick
      test_catches_broken_backward;
    Alcotest.test_case "certificate accepts valid" `Quick
      test_certificate_accepts_valid;
    Alcotest.test_case "certificate rejects tampering" `Quick
      test_certificate_rejects_tampered_solution;
    Alcotest.test_case "certificate rejects negative" `Quick
      test_certificate_rejects_negative_variable;
    Alcotest.test_case "certificate skips non-optimal" `Quick
      test_certificate_ignores_non_optimal;
    Alcotest.test_case "verify instance all objectives" `Quick
      test_verify_instance_all_objectives;
    Alcotest.test_case "invariant feasible" `Quick test_invariant_feasible;
    Alcotest.test_case "invariant flags corruption" `Quick
      test_invariant_flags_corruption;
    Alcotest.test_case "online debug zero violations" `Quick
      test_online_debug_zero_violations ]
