(* Shared fixtures for TE-level tests: small deterministic instances. *)

module Constellation = Sate_orbit.Constellation
module Builder = Sate_topology.Builder
module Generator = Sate_traffic.Generator
module Demand = Sate_traffic.Demand
module Path_db = Sate_paths.Path_db
module Instance = Sate_te.Instance

(* A small Iridium-based instance: deterministic, solvable in
   milliseconds, with enough commodities to exercise constraints. *)
let iridium_instance ?(lambda = 8.0) ?(k = 3) ?(warmup = 30.0) ?(seed = 7) () =
  let c = Constellation.iridium in
  let b = Builder.create c in
  let snap = Builder.snapshot b ~time_s:0.0 in
  let gen =
    Generator.create
      ~config:{ Generator.default_config with Generator.seed }
      ~lambda ()
  in
  Generator.advance gen ~to_s:warmup;
  let demand, up, down = Generator.demand_at gen snap in
  let pairs =
    Array.to_list
      (Array.map (fun (e : Demand.entry) -> (e.Demand.src, e.Demand.dst)) demand.Demand.entries)
  in
  let db = Path_db.compute c snap ~pairs ~k in
  Instance.make ~up_caps:up ~down_caps:down snap demand db

(* A congested variant: high load so capacity constraints bind. *)
let congested_instance () = iridium_instance ~lambda:60.0 ~warmup:60.0 ()

let instance_series ?(count = 3) ?(lambda = 8.0) ?(k = 3) ?(seed = 7) () =
  let c = Constellation.iridium in
  let b = Builder.create c in
  let gen =
    Generator.create
      ~config:{ Generator.default_config with Generator.seed }
      ~lambda ()
  in
  Generator.advance gen ~to_s:30.0;
  List.init count (fun i ->
      let time_s = float_of_int i *. 10.0 in
      let snap = Builder.snapshot b ~time_s in
      Generator.advance gen ~to_s:(30.0 +. time_s);
      let demand, up, down = Generator.demand_at gen snap in
      let pairs =
        Array.to_list
          (Array.map
             (fun (e : Demand.entry) -> (e.Demand.src, e.Demand.dst))
             demand.Demand.entries)
      in
      let db = Path_db.compute c snap ~pairs ~k in
      Instance.make ~up_caps:up ~down_caps:down snap demand db)
