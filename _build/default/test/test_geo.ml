(* Tests for Sate_geo: vector algebra, geodesy, population raster. *)

module Geo = Sate_geo.Geo
module Population = Sate_geo.Population
module Rng = Sate_util.Rng

let vx = { Geo.x = 1.0; y = 0.0; z = 0.0 }

let vy = { Geo.x = 0.0; y = 1.0; z = 0.0 }

let close = Alcotest.(check (float 1e-6))

let test_vector_ops () =
  close "dot orthogonal" 0.0 (Geo.dot vx vy);
  close "norm" 1.0 (Geo.norm vx);
  let c = Geo.cross vx vy in
  close "cross z" 1.0 c.Geo.z;
  let s = Geo.add (Geo.scale 2.0 vx) vy in
  close "add/scale" 2.0 s.Geo.x;
  close "distance" (sqrt 2.0) (Geo.distance vx vy)

let test_lat_lon_roundtrip () =
  let p = Geo.of_lat_lon ~lat_deg:45.0 ~lon_deg:100.0 ~alt_km:550.0 in
  Alcotest.(check (float 1e-6)) "lat" 45.0 (Geo.latitude_deg p);
  Alcotest.(check (float 1e-6)) "lon" 100.0 (Geo.longitude_deg p);
  close "radius" (Geo.earth_radius_km +. 550.0) (Geo.norm p)

let test_equator_position () =
  let p = Geo.of_lat_lon ~lat_deg:0.0 ~lon_deg:0.0 ~alt_km:0.0 in
  close "x" Geo.earth_radius_km p.Geo.x;
  close "y" 0.0 p.Geo.y;
  close "z" 0.0 p.Geo.z

let test_elevation_overhead () =
  let ground = Geo.of_lat_lon ~lat_deg:10.0 ~lon_deg:20.0 ~alt_km:0.0 in
  let sat = Geo.of_lat_lon ~lat_deg:10.0 ~lon_deg:20.0 ~alt_km:550.0 in
  Alcotest.(check (float 1e-3)) "overhead is 90 deg" 90.0
    (Geo.elevation_angle_deg ~ground ~sat)

let test_elevation_below_horizon () =
  let ground = Geo.of_lat_lon ~lat_deg:0.0 ~lon_deg:0.0 ~alt_km:0.0 in
  let sat = Geo.of_lat_lon ~lat_deg:0.0 ~lon_deg:180.0 ~alt_km:550.0 in
  Alcotest.(check bool) "antipodal below horizon" true
    (Geo.elevation_angle_deg ~ground ~sat < 0.0)

let test_line_of_sight () =
  let a = Geo.of_lat_lon ~lat_deg:0.0 ~lon_deg:0.0 ~alt_km:550.0 in
  let b = Geo.of_lat_lon ~lat_deg:0.0 ~lon_deg:10.0 ~alt_km:550.0 in
  Alcotest.(check bool) "nearby sats see each other" true (Geo.line_of_sight a b);
  let c = Geo.of_lat_lon ~lat_deg:0.0 ~lon_deg:180.0 ~alt_km:550.0 in
  Alcotest.(check bool) "antipodal blocked by Earth" false (Geo.line_of_sight a c)

let test_propagation_delay () =
  (* 2998 km at c is ~10 ms. *)
  let a = { Geo.x = 0.0; y = 0.0; z = 0.0 } in
  let b = { Geo.x = 2997.92458; y = 0.0; z = 0.0 } in
  Alcotest.(check (float 1e-6)) "10 ms" 10.0 (Geo.propagation_delay_ms a b)

let test_great_circle () =
  (* Quarter circumference between equator and pole. *)
  let d = Geo.great_circle_km ~lat1:0.0 ~lon1:0.0 ~lat2:90.0 ~lon2:0.0 in
  Alcotest.(check (float 1.0)) "quarter circumference"
    (Float.pi /. 2.0 *. Geo.earth_radius_km) d;
  close "zero distance" 0.0 (Geo.great_circle_km ~lat1:10.0 ~lon1:20.0 ~lat2:10.0 ~lon2:20.0)

let test_population_land_bias () =
  let pop = Population.synthetic ~seed:1 in
  Alcotest.(check bool) "london is land" true
    (Population.is_land pop ~lat_deg:51.5 ~lon_deg:0.0);
  Alcotest.(check bool) "mid-pacific is ocean" false
    (Population.is_land pop ~lat_deg:0.0 ~lon_deg:(-150.0));
  Alcotest.(check bool) "city denser than ocean" true
    (Population.density pop ~lat_deg:51.5 ~lon_deg:0.0
    > Population.density pop ~lat_deg:0.0 ~lon_deg:(-150.0))

let test_population_probabilities () =
  let pop = Population.synthetic ~seed:1 in
  let probs = Population.cell_probabilities pop ~smoothing:1.0 in
  let total = Array.fold_left ( +. ) 0.0 probs in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total;
  Alcotest.(check bool) "all nonnegative" true (Array.for_all (fun p -> p >= 0.0) probs)

let test_population_sampler_determinism () =
  let pop = Population.synthetic ~seed:2 in
  let s = Population.make_sampler pop ~smoothing:1.0 ~land_only:false in
  let a = Population.sample s (Rng.create 5) in
  let b = Population.sample s (Rng.create 5) in
  Alcotest.(check bool) "same seed, same location" true (a = b)

let test_population_land_sampler () =
  let pop = Population.synthetic ~seed:3 in
  let s = Population.make_sampler pop ~smoothing:1.0 ~land_only:true in
  let rng = Rng.create 4 in
  for _ = 1 to 200 do
    let lat, lon = Population.sample s rng in
    Alcotest.(check bool) "sampled on land" true
      (Population.is_land pop ~lat_deg:lat ~lon_deg:lon)
  done

let test_cell_of_bounds () =
  let c1 = Population.cell_of ~lat_deg:(-90.0) ~lon_deg:(-180.0) in
  Alcotest.(check int) "corner cell" 0 c1;
  let c2 = Population.cell_of ~lat_deg:89.9 ~lon_deg:179.9 in
  Alcotest.(check int) "last cell"
    ((Population.grid_rows * Population.grid_cols) - 1)
    c2

let prop_latlon_roundtrip =
  QCheck.Test.make ~name:"lat/lon -> ECEF -> lat/lon" ~count:300
    QCheck.(pair (float_range (-89.0) 89.0) (float_range (-179.0) 179.0))
    (fun (lat, lon) ->
      let p = Geo.of_lat_lon ~lat_deg:lat ~lon_deg:lon ~alt_km:550.0 in
      Float.abs (Geo.latitude_deg p -. lat) < 1e-6
      && Float.abs (Geo.longitude_deg p -. lon) < 1e-6)

let prop_great_circle_symmetric =
  QCheck.Test.make ~name:"great circle symmetric" ~count:200
    QCheck.(
      quad (float_range (-89.0) 89.0) (float_range (-179.0) 179.0)
        (float_range (-89.0) 89.0) (float_range (-179.0) 179.0))
    (fun (la1, lo1, la2, lo2) ->
      let d1 = Geo.great_circle_km ~lat1:la1 ~lon1:lo1 ~lat2:la2 ~lon2:lo2 in
      let d2 = Geo.great_circle_km ~lat1:la2 ~lon1:lo2 ~lat2:la1 ~lon2:lo1 in
      Float.abs (d1 -. d2) < 1e-6)

let suite =
  [ Alcotest.test_case "vector ops" `Quick test_vector_ops;
    Alcotest.test_case "lat/lon roundtrip" `Quick test_lat_lon_roundtrip;
    Alcotest.test_case "equator position" `Quick test_equator_position;
    Alcotest.test_case "elevation overhead" `Quick test_elevation_overhead;
    Alcotest.test_case "elevation horizon" `Quick test_elevation_below_horizon;
    Alcotest.test_case "line of sight" `Quick test_line_of_sight;
    Alcotest.test_case "propagation delay" `Quick test_propagation_delay;
    Alcotest.test_case "great circle" `Quick test_great_circle;
    Alcotest.test_case "population land bias" `Quick test_population_land_bias;
    Alcotest.test_case "population probabilities" `Quick test_population_probabilities;
    Alcotest.test_case "sampler determinism" `Quick test_population_sampler_determinism;
    Alcotest.test_case "land sampler" `Quick test_population_land_sampler;
    Alcotest.test_case "cell bounds" `Quick test_cell_of_bounds;
    QCheck_alcotest.to_alcotest prop_latlon_roundtrip;
    QCheck_alcotest.to_alcotest prop_great_circle_symmetric ]
