(* Cross-module integration tests: full pipelines through orbit ->
   topology -> traffic -> paths -> TE -> learning -> evaluation. *)

module Constellation = Sate_orbit.Constellation
module Builder = Sate_topology.Builder
module Snapshot = Sate_topology.Snapshot
module Link = Sate_topology.Link
module Scenario = Sate_core.Scenario
module Method = Sate_core.Method
module Online = Sate_core.Online
module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Model = Sate_gnn.Model
module Trainer = Sate_gnn.Trainer
module Te_graph = Sate_gnn.Te_graph
module Volume = Sate_pruning.Volume
module Graph_features = Sate_pruning.Graph_features
module Dpp = Sate_pruning.Dpp
module Demand = Sate_traffic.Demand

let relay_scenario () =
  Scenario.create
    ~config:
      { Scenario.default_config with
        Scenario.scale = 396;
        cross_shell = Sate_topology.Builder.Ground_relays;
        lambda = 4.0;
        warmup_s = 20.0 }
    ()

let test_relay_pipeline_end_to_end () =
  (* Bent-pipe regime at mid scale: instances build, LP solves, the
     GNN graph includes relay nodes, and allocations stay feasible. *)
  let s = relay_scenario () in
  let inst = Scenario.instance_at s ~time_s:0.0 in
  Alcotest.(check bool) "commodities exist" true (Instance.num_commodities inst > 0);
  let has_relay_link =
    Array.exists
      (fun l -> l.Link.kind = Link.Relay)
      inst.Instance.snapshot.Snapshot.links
  in
  Alcotest.(check bool) "relay links present" true has_relay_link;
  let g = Te_graph.of_instance inst in
  Alcotest.(check int) "graph covers relays too"
    (Snapshot.num_nodes inst.Instance.snapshot)
    g.Te_graph.num_sats;
  let alloc = Sate_te.Lp_solver.solve inst in
  Alcotest.(check bool) "lp feasible at mid scale" true
    (Allocation.is_feasible inst alloc)

let test_relay_paths_transit_relays () =
  (* With isolated shells joined only by bent pipes, cross-shell
     commodities must route through a relay node. *)
  let s = relay_scenario () in
  let inst = Scenario.instance_at s ~time_s:0.0 in
  let num_sats = inst.Instance.snapshot.Snapshot.num_sats in
  let shells = Constellation.shells (Scenario.constellation s) in
  let shell0 = Sate_orbit.Shell.size shells.(0) in
  let crosses_shells (c : Instance.commodity) =
    (c.Instance.src < shell0) <> (c.Instance.dst < shell0)
  in
  let cross = Array.to_list inst.Instance.commodities |> List.filter crosses_shells in
  let with_relay_hop (c : Instance.commodity) =
    Array.exists
      (fun (p : Sate_paths.Path.t) ->
        Array.exists (fun n -> n >= num_sats) p.Sate_paths.Path.nodes)
      c.Instance.paths
  in
  match List.find_opt (fun c -> Array.length c.Instance.paths > 0) cross with
  | Some c -> Alcotest.(check bool) "cross-shell path uses a relay" true (with_relay_hop c)
  | None -> () (* no routable cross-shell demand in this draw *)

let test_train_then_online_pipeline () =
  (* Train briefly, then run the online loop with the trained model:
     satisfied demand must be well above zero and all ticks valid. *)
  let mk () =
    Scenario.create
      ~config:{ Scenario.default_config with Scenario.lambda = 5.0; warmup_s = 20.0 }
      ()
  in
  let s = mk () in
  let samples =
    List.init 3 (fun i ->
        Trainer.make_sample (Scenario.instance_at s ~time_s:(float_of_int i *. 6.0)))
  in
  let model = Model.create ~seed:11 () in
  ignore (Trainer.train ~epochs:15 model samples);
  let r = Online.evaluate ~duration_s:6.0 (mk ()) (Method.Sate model) in
  Alcotest.(check bool)
    (Printf.sprintf "online satisfied %.3f > 0.2" r.Online.mean_satisfied)
    true
    (r.Online.mean_satisfied > 0.2);
  Alcotest.(check int) "six ticks" 6 (List.length r.Online.per_tick)

let test_pruning_pipeline () =
  (* Vectorize a pool of snapshots, DPP-select, confirm selected
     subset is valid and volumes shrink. *)
  let b = Builder.create Constellation.iridium in
  let snaps = List.init 10 (fun i -> Builder.snapshot b ~time_s:(float_of_int i *. 60.0)) in
  let vectors = Array.of_list (List.map Graph_features.vectorize snaps) in
  let sel = Dpp.select ~vectors ~k:4 () in
  Alcotest.(check bool) "selected within pool" true
    (Array.for_all (fun i -> i >= 0 && i < 10) sel);
  let inst = Helpers.iridium_instance () in
  let demand =
    Demand.of_assoc ~num_sats:66
      (Array.to_list
         (Array.map
            (fun (c : Instance.commodity) ->
              (c.Instance.src, c.Instance.dst, c.Instance.demand_mbps))
            inst.Instance.commodities))
  in
  let vol = Volume.of_instance ~k:3 inst demand in
  Alcotest.(check bool) "pruning shrinks the data point" true (vol.Volume.reduction > 1.0)

let test_lp_ub_dominates_all_methods () =
  (* System-level sanity: on one congested instance the exact LP is an
     upper bound for every implemented allocator. *)
  let inst = Helpers.congested_instance () in
  let lp = Allocation.total_flow (Sate_te.Lp_solver.solve inst) in
  let model = Model.create ~seed:12 () in
  List.iter
    (fun m ->
      let flow = Allocation.total_flow (Method.solve m inst) in
      Alcotest.(check bool)
        (Method.name m ^ " below LP bound")
        true
        (flow <= lp +. 1e-6))
    [ Method.Pop 3; Method.Ecmp_wf; Method.Satellite_routing; Method.Sate model ]

let test_carryover_degrades_gracefully () =
  (* An allocation carried across growing time gaps loses throughput
     monotonically-ish but never becomes infeasible. *)
  let s =
    Scenario.create
      ~config:{ Scenario.default_config with Scenario.lambda = 6.0; warmup_s = 30.0 }
      ()
  in
  let i0 = Scenario.instance_at s ~time_s:0.0 in
  let alloc = Sate_te.Lp_solver.solve i0 in
  List.iter
    (fun t ->
      let it = Scenario.instance_at s ~time_s:t in
      let carried = Online.carryover i0 alloc it in
      Alcotest.(check bool)
        (Printf.sprintf "feasible at t=%.0f" t)
        true
        (Allocation.is_feasible it carried))
    [ 5.0; 15.0; 40.0 ]

let suite =
  [ Alcotest.test_case "relay pipeline end-to-end" `Slow test_relay_pipeline_end_to_end;
    Alcotest.test_case "relay paths transit relays" `Slow test_relay_paths_transit_relays;
    Alcotest.test_case "train then online" `Slow test_train_then_online_pipeline;
    Alcotest.test_case "pruning pipeline" `Quick test_pruning_pipeline;
    Alcotest.test_case "lp dominates all" `Quick test_lp_ub_dominates_all_methods;
    Alcotest.test_case "carryover graceful" `Quick test_carryover_degrades_gracefully ]
