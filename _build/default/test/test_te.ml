(* Tests for Sate_te: instances, allocations, trimming, LP solver. *)

module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Lp_solver = Sate_te.Lp_solver
module Rng = Sate_util.Rng

let test_instance_construction () =
  let inst = Helpers.iridium_instance () in
  Alcotest.(check bool) "has commodities" true (Instance.num_commodities inst > 0);
  Alcotest.(check bool) "has paths" true (Instance.num_paths inst > 0);
  Alcotest.(check bool) "demand positive" true (Instance.total_demand inst > 0.0);
  Alcotest.(check bool) "routable <= total" true
    (Instance.routable_demand inst <= Instance.total_demand inst +. 1e-9);
  let used = Instance.used_links inst in
  Alcotest.(check bool) "used links sorted unique" true
    (Array.for_all2 ( = )
       used
       (let c = Array.copy used in
        Array.sort compare c;
        c))

let test_zeros_allocation () =
  let inst = Helpers.iridium_instance () in
  let alloc = Allocation.zeros inst in
  Alcotest.(check (float 0.0)) "no flow" 0.0 (Allocation.total_flow alloc);
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst alloc);
  Alcotest.(check (float 0.0)) "mlu zero" 0.0 (Allocation.mlu inst alloc)

let test_scale_to_demand () =
  let inst = Helpers.iridium_instance () in
  let alloc = Allocation.zeros inst in
  (* Grossly over-allocate every path, including negative noise. *)
  Array.iteri
    (fun f rates ->
      Array.iteri
        (fun p _ ->
          rates.(p) <-
            (if p mod 2 = 0 then 1e6 else -5.0))
        alloc.(f);
      ignore f)
    alloc;
  let scaled = Allocation.scale_to_demand inst alloc in
  Array.iteri
    (fun f rates ->
      let total = Array.fold_left ( +. ) 0.0 rates in
      let demand = inst.Instance.commodities.(f).Instance.demand_mbps in
      Alcotest.(check bool) "within demand" true (total <= demand +. 1e-6);
      Array.iter (fun r -> Alcotest.(check bool) "nonneg" true (r >= 0.0)) rates)
    scaled

let test_trim_always_feasible () =
  let inst = Helpers.congested_instance () in
  let rng = Rng.create 3 in
  for _ = 1 to 10 do
    let alloc = Allocation.zeros inst in
    Array.iter
      (fun rates ->
        Array.iteri (fun p _ -> rates.(p) <- Rng.uniform rng (-10.0) 500.0) rates)
      alloc;
    let trimmed = Allocation.trim inst alloc in
    Alcotest.(check bool) "trim output feasible" true (Allocation.is_feasible inst trimmed)
  done

let test_trim_keeps_feasible_allocation () =
  let inst = Helpers.iridium_instance () in
  let lp = Lp_solver.solve inst in
  let again = Allocation.trim inst lp in
  (* Trimming a feasible allocation must not lose throughput. *)
  Alcotest.(check (float 1e-6)) "no loss"
    (Allocation.total_flow lp) (Allocation.total_flow again)

let test_lp_optimality_vs_heuristics () =
  let inst = Helpers.congested_instance () in
  let lp = Lp_solver.solve inst in
  Alcotest.(check bool) "lp feasible" true (Allocation.is_feasible inst lp);
  let ecmp = Sate_baselines.Ecmp_wf.solve inst in
  let bp = Sate_baselines.Satellite_routing.solve inst in
  let lp_flow = Allocation.total_flow lp in
  Alcotest.(check bool) "lp >= ecmp" true (lp_flow >= Allocation.total_flow ecmp -. 1e-6);
  Alcotest.(check bool) "lp >= backpressure" true (lp_flow >= Allocation.total_flow bp -. 1e-6)

let test_lp_light_load_satisfies_all () =
  let inst = Helpers.iridium_instance ~lambda:2.0 ~warmup:10.0 () in
  let lp = Lp_solver.solve inst in
  Alcotest.(check bool) "nearly all demand satisfied" true
    (Allocation.satisfied_ratio inst lp > 0.99)

let test_mlu_routes_all_demand () =
  let inst = Helpers.iridium_instance ~lambda:5.0 () in
  let alloc, t = Lp_solver.solve_with_value ~objective:Lp_solver.Min_mlu inst in
  (* All routable demand must be carried (equality constraints). *)
  let flow = Allocation.total_flow alloc in
  Alcotest.(check bool) "all routable demand routed" true
    (Float.abs (flow -. Instance.routable_demand inst) < 1e-3);
  Alcotest.(check (float 1e-4)) "objective equals achieved MLU" t (Allocation.mlu inst alloc)

let test_mlu_below_throughput_mlu () =
  let inst = Helpers.iridium_instance ~lambda:5.0 () in
  let mlu_alloc, t = Lp_solver.solve_with_value ~objective:Lp_solver.Min_mlu inst in
  ignore mlu_alloc;
  let thr = Lp_solver.solve inst in
  (* If max-throughput satisfies all demand, the MLU optimum can only
     be lower or equal. *)
  if Allocation.satisfied_ratio inst thr > 0.999 then
    Alcotest.(check bool) "mlu optimum <= throughput solution mlu" true
      (t <= Allocation.mlu inst thr +. 1e-6)

let test_per_commodity_ratio () =
  let inst = Helpers.iridium_instance () in
  let lp = Lp_solver.solve inst in
  let ratios = Allocation.per_commodity_ratio inst lp in
  Alcotest.(check int) "one ratio per commodity" (Instance.num_commodities inst)
    (Array.length ratios);
  Array.iter
    (fun r -> Alcotest.(check bool) "ratio in [0,1]" true (r >= -1e-9 && r <= 1.0 +. 1e-6))
    ratios

let test_node_caps_respected () =
  (* Tight uplink caps must bind. *)
  let inst = Helpers.iridium_instance () in
  let tight =
    { inst with
      Instance.up_caps = Array.map (fun _ -> 1.0) inst.Instance.up_caps }
  in
  let lp = Lp_solver.solve tight in
  let up, _ = Allocation.node_loads tight lp in
  Array.iter
    (fun l -> Alcotest.(check bool) "uplink cap respected" true (l <= 1.0 +. 1e-6))
    up

let test_restrict_to_valid () =
  let inst = Helpers.iridium_instance () in
  let lp = Lp_solver.solve inst in
  (* Remove a carrying link; restricted allocation must drop flows on
     paths using it. *)
  let loads = Allocation.link_loads inst lp in
  let victim = ref (-1) in
  Array.iteri (fun li l -> if !victim < 0 && l > 0.0 then victim := li) loads;
  if !victim >= 0 then begin
    let l = inst.Instance.snapshot.Sate_topology.Snapshot.links.(!victim) in
    let degraded =
      Sate_topology.Snapshot.remove_links inst.Instance.snapshot
        [ (l.Sate_topology.Link.u, l.Sate_topology.Link.v) ]
    in
    let restricted = Allocation.restrict_to_valid inst degraded lp in
    Alcotest.(check bool) "flow dropped" true
      (Allocation.total_flow restricted < Allocation.total_flow lp)
  end

let test_verify_mode_all_objectives () =
  (* ~verify:true certifies every simplex outcome and re-audits the
     trimmed allocation; any discrepancy raises Verification_failed. *)
  List.iter
    (fun inst ->
      List.iter
        (fun objective ->
          let alloc, value =
            Lp_solver.solve_with_value ~objective ~verify:true inst
          in
          let alloc', value' = Lp_solver.solve_with_value ~objective inst in
          Alcotest.(check (float 1e-9)) "same value as unverified" value' value;
          Alcotest.(check bool) "same allocation as unverified" true (alloc = alloc'))
        [ Lp_solver.Max_throughput; Lp_solver.Min_mlu; Lp_solver.Max_log_utility ])
    [ Helpers.iridium_instance (); Helpers.congested_instance () ]

let test_violations_empty_on_lp () =
  let inst = Helpers.congested_instance () in
  let lp = Lp_solver.solve inst in
  Alcotest.(check (list string)) "no violations"
    []
    (List.map Allocation.violation_to_string (Allocation.violations inst lp))

let test_violations_structured () =
  let inst = Helpers.iridium_instance () in
  let lp = Lp_solver.solve inst in
  (* Corrupt one rate: negative flow. *)
  let neg = Array.map Array.copy lp in
  neg.(0).(0) <- -1.0;
  let vs = Allocation.violations inst neg in
  Alcotest.(check bool) "negative rate reported" true
    (List.exists
       (function
         | Allocation.Negative_rate { commodity = 0; path = 0; rate } ->
             Float.abs (rate +. 1.0) < 1e-9
         | _ -> false)
       vs);
  (* Corrupt one rate: far above demand, overloading its links. *)
  let big = Array.map Array.copy lp in
  big.(0).(0) <- 1e7;
  let vs = Allocation.violations inst big in
  Alcotest.(check bool) "demand exceeded reported" true
    (List.exists
       (function
         | Allocation.Demand_exceeded { commodity = 0; _ } -> true
         | _ -> false)
       vs);
  Alcotest.(check bool) "link overload reported" true
    (List.exists
       (function Allocation.Link_overload _ -> true | _ -> false)
       vs);
  Alcotest.(check bool) "is_feasible agrees" false (Allocation.is_feasible inst big)

let prop_trim_feasible =
  QCheck.Test.make ~name:"trim is a feasibility projection" ~count:25
    QCheck.(int_bound 1000)
    (fun seed ->
      let inst = Helpers.iridium_instance ~lambda:20.0 ~warmup:20.0 () in
      let rng = Rng.create seed in
      let alloc = Allocation.zeros inst in
      Array.iter
        (fun rates ->
          Array.iteri (fun p _ -> rates.(p) <- Rng.uniform rng (-50.0) 300.0) rates)
        alloc;
      Allocation.is_feasible inst (Allocation.trim inst alloc))

let suite =
  [ Alcotest.test_case "instance construction" `Quick test_instance_construction;
    Alcotest.test_case "zeros allocation" `Quick test_zeros_allocation;
    Alcotest.test_case "scale to demand" `Quick test_scale_to_demand;
    Alcotest.test_case "trim always feasible" `Quick test_trim_always_feasible;
    Alcotest.test_case "trim keeps feasible" `Quick test_trim_keeps_feasible_allocation;
    Alcotest.test_case "lp optimality" `Quick test_lp_optimality_vs_heuristics;
    Alcotest.test_case "lp light load" `Quick test_lp_light_load_satisfies_all;
    Alcotest.test_case "mlu routes all" `Quick test_mlu_routes_all_demand;
    Alcotest.test_case "mlu vs throughput" `Quick test_mlu_below_throughput_mlu;
    Alcotest.test_case "per-commodity ratio" `Quick test_per_commodity_ratio;
    Alcotest.test_case "node caps respected" `Quick test_node_caps_respected;
    Alcotest.test_case "restrict to valid" `Quick test_restrict_to_valid;
    Alcotest.test_case "verify mode all objectives" `Quick test_verify_mode_all_objectives;
    Alcotest.test_case "violations empty on lp" `Quick test_violations_empty_on_lp;
    Alcotest.test_case "violations structured" `Quick test_violations_structured;
    QCheck_alcotest.to_alcotest prop_trim_feasible ]
