(* Starlink topology dynamics: reproduce the Section 2.3 analysis on
   the full 4,236-satellite constellation — how long topologies hold,
   and how quickly configured paths rot.

   Run with:  dune exec examples/starlink_dynamics.exe *)

module Constellation = Sate_orbit.Constellation
module Builder = Sate_topology.Builder
module Snapshot = Sate_topology.Snapshot
module Analysis = Sate_topology.Analysis
module Dijkstra = Sate_paths.Dijkstra
module Path = Sate_paths.Path
module Stats = Sate_util.Stats
module Rng = Sate_util.Rng

let () =
  let c = Constellation.starlink_phase1 in
  Printf.printf "Starlink phase 1: %d satellites in %d shells\n%!"
    (Constellation.size c)
    (Array.length (Constellation.shells c));
  let b = Builder.create c in
  let snap = Builder.snapshot b ~time_s:0.0 in
  Printf.printf "snapshot at t=0: %d live ISLs\n%!" (Array.length snap.Snapshot.links);
  (* Topology holding time, sampled at the paper's 12.5 ms. *)
  print_endline "sampling 400 snapshots every 12.5 ms...";
  Builder.reset b;
  let ht = Analysis.holding_times_ms b ~start_s:0.0 ~dt_s:0.0125 ~count:400 in
  if Array.length ht > 0 then
    Printf.printf "topology holding time: mean=%.0f ms, max=%.0f ms (%d holds)\n%!"
      (Stats.mean ht)
      (snd (Stats.min_max ht))
      (Array.length ht);
  (* Path obsolescence: configure shortest paths now, watch them rot. *)
  Builder.reset b;
  let snap0 = Builder.snapshot b ~time_s:0.0 in
  Builder.reset b;
  let rng = Rng.create 1 in
  let paths =
    List.filter_map
      (fun _ ->
        let src = Rng.int rng 4236 and dst = Rng.int rng 4236 in
        if src = dst then None
        else
          Option.map Path.to_list (Dijkstra.shortest snap0 ~src ~dst))
      (List.init 80 Fun.id)
  in
  Printf.printf "tracking %d configured shortest paths...\n%!" (List.length paths);
  let series =
    Analysis.path_obsolescence b ~start_s:0.0 ~dt_s:10.0 ~checkpoints:[ 3; 9; 15 ]
      ~paths
  in
  List.iter
    (fun (k, frac) ->
      Printf.printf "after %3.0f s: %4.1f%% of configured paths invalid\n%!"
        (float_of_int k *. 10.0) (frac *. 100.0))
    series;
  print_endline "this is why minute-scale TE computation wastes satellite capacity."
