(* Link-failure robustness (Appendix H.3): inject random laser
   failures and measure how gracefully a trained SaTE model degrades —
   GNN inference needs no retraining because failed links simply
   vanish from the input graph.

   Run with:  dune exec examples/failure_study.exe *)

module Scenario = Sate_core.Scenario
module Model = Sate_gnn.Model
module Trainer = Sate_gnn.Trainer
module Analysis = Sate_topology.Analysis
module Snapshot = Sate_topology.Snapshot
module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Demand = Sate_traffic.Demand
module Path_db = Sate_paths.Path_db
module Rng = Sate_util.Rng

let rebuild_against scenario (inst : Instance.t) snap =
  (* Re-derive candidate paths on the degraded topology; demands are
     unchanged. *)
  let demand =
    Demand.of_assoc ~num_sats:inst.Instance.snapshot.Snapshot.num_sats
      (Array.to_list
         (Array.map
            (fun (c : Instance.commodity) ->
              (c.Instance.src, c.Instance.dst, c.Instance.demand_mbps))
            inst.Instance.commodities))
  in
  let pairs =
    Array.to_list
      (Array.map (fun (e : Demand.entry) -> (e.Demand.src, e.Demand.dst)) demand.Demand.entries)
  in
  let db =
    Path_db.compute (Scenario.constellation scenario) snap ~pairs
      ~k:(Scenario.config scenario).Scenario.k
  in
  Instance.make ~up_caps:inst.Instance.up_caps ~down_caps:inst.Instance.down_caps
    snap demand db

let () =
  print_endline "link-failure study, 66 satellites";
  let scenario = Scenario.create () in
  let samples =
    List.init 4 (fun i ->
        Trainer.make_sample (Scenario.instance_at scenario ~time_s:(float_of_int i *. 8.0)))
  in
  let model = Model.create ~seed:1 () in
  Printf.printf "training SaTE...\n%!";
  ignore (Trainer.train ~epochs:30 model samples);
  let inst = Scenario.instance_at scenario ~time_s:50.0 in
  let healthy = Allocation.satisfied_ratio inst (Model.predict model inst) in
  Printf.printf "healthy topology: satisfied=%.1f%%\n%!" (100.0 *. healthy);
  let rng = Rng.create 2 in
  List.iter
    (fun rate ->
      let degraded_snap, failed =
        Analysis.random_link_failures inst.Instance.snapshot ~rate rng
      in
      let degraded = rebuild_against scenario inst degraded_snap in
      let sat = Allocation.satisfied_ratio degraded (Model.predict model degraded) in
      Printf.printf
        "failure rate %4.1f%% (%2d links down): satisfied=%5.1f%%  loss=%4.1f%%\n%!"
        (rate *. 100.0) (List.length failed) (100.0 *. sat)
        (100.0 *. Float.max 0.0 (healthy -. sat)))
    [ 0.001; 0.01; 0.05 ];
  print_endline "no retraining was performed between failure levels."
