examples/starlink_dynamics.ml: Array Fun List Option Printf Sate_orbit Sate_paths Sate_topology Sate_util
