examples/online_te.ml: List Printf Sate_core Sate_gnn
