examples/failure_study.mli:
