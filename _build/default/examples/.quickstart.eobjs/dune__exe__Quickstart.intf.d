examples/quickstart.mli:
