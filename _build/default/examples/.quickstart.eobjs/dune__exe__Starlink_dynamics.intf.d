examples/starlink_dynamics.mli:
