examples/failure_study.ml: Array Float List Printf Sate_core Sate_gnn Sate_paths Sate_te Sate_topology Sate_traffic Sate_util
