examples/quickstart.ml: Array List Printf Sate_core Sate_gnn Sate_te
