examples/online_te.mli:
