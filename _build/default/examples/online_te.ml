(* Online TE under computation delay: the headline experiment shape of
   Sec. 5.4.  The same network serves fluctuating traffic while each
   method recomputes at its own cadence; slow methods serve stale
   allocations whose paths rot and whose flows have departed.

   Run with:  dune exec examples/online_te.exe *)

module Scenario = Sate_core.Scenario
module Method = Sate_core.Method
module Online = Sate_core.Online
module Model = Sate_gnn.Model
module Trainer = Sate_gnn.Trainer

let () =
  let lambda = 12.0 in
  Printf.printf "online TE, 66 satellites, %.0f flows/s, 45 s horizon\n%!" lambda;
  (* Train a SaTE model on earlier traffic from the same regime. *)
  let train_scenario =
    Scenario.create ~config:{ Scenario.default_config with Scenario.lambda = lambda } ()
  in
  let samples =
    List.init 4 (fun i ->
        Trainer.make_sample
          (Scenario.instance_at train_scenario ~time_s:(float_of_int i *. 8.0)))
  in
  let model = Model.create ~seed:1 () in
  Printf.printf "training SaTE...\n%!";
  ignore (Trainer.train ~epochs:30 model samples);
  (* Replay each method at the cadence the paper measured on Starlink
     (Gurobi 47 s, POP 25 s, ECMP+WF 54 s; SaTE 17 ms). *)
  let cases =
    [ (Method.Sate model, Some 17.0);
      (Method.Lp, Some 47_000.0);
      (Method.Pop 4, Some 25_000.0);
      (Method.Ecmp_wf, Some 54_000.0);
      (Method.Satellite_routing, Some 0.0) ]
  in
  List.iter
    (fun (m, cadence) ->
      let s =
        Scenario.create
          ~config:{ Scenario.default_config with Scenario.lambda = lambda }
          ()
      in
      let r = Online.evaluate ?latency_override_ms:cadence ~duration_s:45.0 s m in
      Printf.printf "%-18s online satisfied=%5.1f%%  (TE rounds completed: %d)\n%!"
        r.Online.method_name
        (100.0 *. r.Online.mean_satisfied)
        r.Online.recomputations)
    cases;
  print_endline "low computation latency converts directly into satisfied demand."
