(* Quickstart: build a constellation, generate traffic, train a small
   SaTE model, and compare its allocation against the exact LP optimum
   and the heuristic baselines.

   Run with:  dune exec examples/quickstart.exe *)

module Scenario = Sate_core.Scenario
module Method = Sate_core.Method
module Model = Sate_gnn.Model
module Trainer = Sate_gnn.Trainer
module Allocation = Sate_te.Allocation
module Instance = Sate_te.Instance

let () =
  print_endline "SaTE quickstart: Iridium constellation, 8 flows/s";
  (* 1. A scenario bundles the orbital simulator, topology builder,
     traffic generator, and the incrementally maintained path store. *)
  let scenario =
    Scenario.create
      ~config:
        { Scenario.default_config with Scenario.scale = 66; lambda = 8.0 }
      ()
  in
  (* 2. TE instances: topology snapshot + traffic matrix + candidate
     paths, sampled as the satellites move and flows arrive/expire. *)
  let train_instances =
    List.init 4 (fun i -> Scenario.instance_at scenario ~time_s:(float_of_int i *. 8.0))
  in
  let test_instance = Scenario.instance_at scenario ~time_s:60.0 in
  Printf.printf "test instance: %d commodities, %d candidate paths, %.0f Mbps demand\n%!"
    (Instance.num_commodities test_instance)
    (Instance.num_paths test_instance)
    (Instance.total_demand test_instance);
  (* 3. Train SaTE on LP-labelled samples (seconds at this scale). *)
  print_endline "training SaTE (30 epochs)...";
  let model = Model.create ~seed:1 () in
  let samples = List.map Trainer.make_sample train_instances in
  let report = Trainer.train ~epochs:30 model samples in
  Printf.printf "trained in %.1f s (loss %.3f -> %.3f)\n%!" report.Trainer.wall_clock_s
    report.Trainer.losses.(0)
    report.Trainer.losses.(Array.length report.Trainer.losses - 1);
  (* 4. Compare methods on the unseen instance. *)
  List.iter
    (fun m ->
      let alloc, ms = Method.solve_timed m test_instance in
      Printf.printf "%-18s satisfied=%5.1f%%  latency=%8.2f ms  feasible=%b\n%!"
        (Method.name m)
        (100.0 *. Allocation.satisfied_ratio test_instance alloc)
        ms
        (Allocation.is_feasible test_instance alloc))
    [ Method.Lp; Method.Sate model; Method.Pop 4; Method.Ecmp_wf;
      Method.Satellite_routing ]
