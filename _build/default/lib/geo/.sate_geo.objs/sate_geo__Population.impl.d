lib/geo/population.ml: Array Float Geo List Sate_util
