lib/geo/geo.mli:
