lib/geo/geo.ml: Float
