lib/geo/population.mli: Sate_util
