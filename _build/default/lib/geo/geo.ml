let earth_radius_km = 6371.0

let speed_of_light_km_s = 299792.458

let mu_earth = 398600.4418

type vec3 = { x : float; y : float; z : float }

let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }

let scale k a = { x = k *. a.x; y = k *. a.y; z = k *. a.z }

let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

let cross a b =
  { x = (a.y *. b.z) -. (a.z *. b.y);
    y = (a.z *. b.x) -. (a.x *. b.z);
    z = (a.x *. b.y) -. (a.y *. b.x) }

let norm a = sqrt (dot a a)

let distance a b = norm (sub a b)

let deg_to_rad d = d *. Float.pi /. 180.0

let rad_to_deg r = r *. 180.0 /. Float.pi

let of_lat_lon ~lat_deg ~lon_deg ~alt_km =
  let lat = deg_to_rad lat_deg and lon = deg_to_rad lon_deg in
  let r = earth_radius_km +. alt_km in
  { x = r *. cos lat *. cos lon; y = r *. cos lat *. sin lon; z = r *. sin lat }

let latitude_deg v =
  let r = norm v in
  if r = 0.0 then 0.0 else rad_to_deg (asin (v.z /. r))

let longitude_deg v = rad_to_deg (atan2 v.y v.x)

let elevation_angle_deg ~ground ~sat =
  let to_sat = sub sat ground in
  let d = norm to_sat and g = norm ground in
  if d = 0.0 || g = 0.0 then 90.0
  else
    (* Angle between local zenith (ground vector) and satellite
       direction, measured from the horizon plane. *)
    let cos_zenith = dot ground to_sat /. (g *. d) in
    let cos_zenith = Float.max (-1.0) (Float.min 1.0 cos_zenith) in
    90.0 -. rad_to_deg (acos cos_zenith)

let line_of_sight a b =
  (* Minimal distance from Earth's center to segment [a,b] must
     exceed the Earth radius (plus a small atmosphere margin of 80 km
     that grazing laser links must clear). *)
  let margin = 80.0 in
  let ab = sub b a in
  let len2 = dot ab ab in
  let closest =
    if len2 = 0.0 then a
    else
      let t = -.dot a ab /. len2 in
      let t = Float.max 0.0 (Float.min 1.0 t) in
      add a (scale t ab)
  in
  norm closest > earth_radius_km +. margin

let propagation_delay_ms a b = distance a b /. speed_of_light_km_s *. 1000.0

let great_circle_km ~lat1 ~lon1 ~lat2 ~lon2 =
  (* Haversine: numerically stable for small separations, where the
     spherical law of cosines loses precision. *)
  let p1 = deg_to_rad lat1 and p2 = deg_to_rad lat2 in
  let dp = deg_to_rad (lat2 -. lat1) and dl = deg_to_rad (lon2 -. lon1) in
  let a =
    (sin (dp /. 2.0) *. sin (dp /. 2.0))
    +. (cos p1 *. cos p2 *. sin (dl /. 2.0) *. sin (dl /. 2.0))
  in
  let a = Float.max 0.0 (Float.min 1.0 a) in
  2.0 *. earth_radius_km *. atan2 (sqrt a) (sqrt (1.0 -. a))
