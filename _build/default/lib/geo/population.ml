module Rng = Sate_util.Rng

let grid_cols = 360

let grid_rows = 180

type t = {
  density : float array; (* row-major, row 0 at lat -90 *)
  land_mask : bool array;
}

let cell_of ~lat_deg ~lon_deg =
  let lat = Float.max (-90.0) (Float.min 89.999 lat_deg) in
  let lon =
    let l = Float.rem (lon_deg +. 180.0) 360.0 in
    if l < 0.0 then l +. 360.0 else l
  in
  let row = int_of_float (lat +. 90.0) in
  let col = int_of_float lon in
  (row * grid_cols) + min (grid_cols - 1) col

(* Coarse rectangular approximations of the continents: (lat_lo,
   lat_hi, lon_lo, lon_hi).  Only the lat/lon structure matters for
   the simulation: land_mask-concentrated users, empty oceans, polar
   emptiness. *)
let continent_boxes =
  [ (25.0, 70.0, -10.0, 60.0) (* Europe / Middle East *)
  ; (5.0, 55.0, 60.0, 145.0) (* Asia *)
  ; (-10.0, 8.0, 95.0, 140.0) (* maritime southeast Asia *)
  ; (-35.0, 35.0, -17.0, 50.0) (* Africa *)
  ; (15.0, 70.0, -165.0, -55.0) (* North America *)
  ; (-55.0, 12.0, -82.0, -35.0) (* South America *)
  ; (-43.0, -11.0, 113.0, 153.0) (* Australia *) ]

(* Major metro hot spots: (lat, lon, weight). *)
let hotspots =
  [ (40.7, -74.0, 9.0) (* New York *)
  ; (34.0, -118.2, 7.0) (* Los Angeles *)
  ; (19.4, -99.1, 6.0) (* Mexico City *)
  ; (-23.5, -46.6, 7.0) (* Sao Paulo *)
  ; (51.5, -0.1, 8.0) (* London *)
  ; (48.9, 2.3, 6.0) (* Paris *)
  ; (55.8, 37.6, 5.0) (* Moscow *)
  ; (30.0, 31.2, 6.0) (* Cairo *)
  ; (6.5, 3.4, 7.0) (* Lagos *)
  ; (-26.2, 28.0, 4.0) (* Johannesburg *)
  ; (28.6, 77.2, 10.0) (* Delhi *)
  ; (19.1, 72.9, 9.0) (* Mumbai *)
  ; (39.9, 116.4, 10.0) (* Beijing *)
  ; (31.2, 121.5, 10.0) (* Shanghai *)
  ; (35.7, 139.7, 9.0) (* Tokyo *)
  ; (37.6, 127.0, 7.0) (* Seoul *)
  ; (-6.2, 106.8, 8.0) (* Jakarta *)
  ; (14.6, 121.0, 5.0) (* Manila *)
  ; (-33.9, 151.2, 4.0) (* Sydney *)
  ; (41.0, 29.0, 5.0) (* Istanbul *)
  ; (24.9, 67.0, 6.0) (* Karachi *)
  ; (23.8, 90.4, 6.0) (* Dhaka *)
  ; (-34.6, -58.4, 4.0) (* Buenos Aires *)
  ; (45.5, -73.6, 3.0) (* Montreal *)
  ; (1.35, 103.8, 4.0) (* Singapore *) ]

let in_box lat lon (lat_lo, lat_hi, lon_lo, lon_hi) =
  lat >= lat_lo && lat <= lat_hi && lon >= lon_lo && lon <= lon_hi

let synthetic ~seed =
  let rng = Rng.create seed in
  let density = Array.make (grid_rows * grid_cols) 0.0 in
  let land_mask = Array.make (grid_rows * grid_cols) false in
  for row = 0 to grid_rows - 1 do
    for col = 0 to grid_cols - 1 do
      let lat = float_of_int row -. 90.0 +. 0.5 in
      let lon = float_of_int col -. 180.0 +. 0.5 in
      let on_land = List.exists (in_box lat lon) continent_boxes in
      let idx = (row * grid_cols) + col in
      land_mask.(idx) <- on_land;
      if on_land then begin
        (* Rural baseline with mild noise. *)
        let base = 1.0 +. Rng.float rng 0.5 in
        (* Urban kernels: exponential decay with great-circle distance. *)
        let urban =
          List.fold_left
            (fun acc (hlat, hlon, w) ->
              let d = Geo.great_circle_km ~lat1:lat ~lon1:lon ~lat2:hlat ~lon2:hlon in
              acc +. (w *. 100.0 *. exp (-.d /. 300.0)))
            0.0 hotspots
        in
        density.(idx) <- base +. urban
      end
    done
  done;
  { density; land_mask }

let density t ~lat_deg ~lon_deg = t.density.(cell_of ~lat_deg ~lon_deg)

let is_land t ~lat_deg ~lon_deg = t.land_mask.(cell_of ~lat_deg ~lon_deg)

let cell_probabilities t ~smoothing =
  let n = grid_rows * grid_cols in
  let raw = Array.init n (fun i -> t.density.(i) +. smoothing) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun v -> v /. total) raw

let location_in_cell rng idx =
  let row = idx / grid_cols and col = idx mod grid_cols in
  let lat = float_of_int row -. 90.0 +. Rng.float rng 1.0 in
  let lon = float_of_int col -. 180.0 +. Rng.float rng 1.0 in
  (lat, lon)

type sampler = { cumulative : float array }

let make_sampler t ~smoothing ~land_only =
  let probs = cell_probabilities t ~smoothing in
  let masked =
    if land_only then Array.mapi (fun i p -> if t.land_mask.(i) then p else 0.0) probs
    else probs
  in
  let n = Array.length masked in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. masked.(i);
    cumulative.(i) <- !acc
  done;
  assert (!acc > 0.0);
  { cumulative }

let sample s rng =
  let total = s.cumulative.(Array.length s.cumulative - 1) in
  let target = Rng.float rng total in
  (* Binary search for the first cumulative value exceeding target. *)
  let lo = ref 0 and hi = ref (Array.length s.cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.cumulative.(mid) > target then hi := mid else lo := mid + 1
  done;
  location_in_cell rng !lo

let sample_location t ~smoothing rng =
  sample (make_sampler t ~smoothing ~land_only:false) rng

let sample_land_location t ~smoothing rng =
  sample (make_sampler t ~smoothing ~land_only:true) rng
