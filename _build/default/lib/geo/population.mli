(** Synthetic global population-density raster.

    The paper drives user/gateway placement from the GPW v4 gridded
    population of the world (360 x 180 one-degree cells) with a
    smoothing factor for remote areas (Appendix G, Eq. 8).  GPW data
    is not available offline, so this module synthesizes a raster with
    the properties the evaluation depends on: density concentrated on
    continent-shaped land masses with heavy-tailed urban hot spots and
    empty oceans, which is what makes satellite traffic matrices
    sparse (the lever behind SaTE's traffic pruning). *)

type t

val grid_cols : int
(** 360 longitude cells of one degree. *)

val grid_rows : int
(** 180 latitude cells of one degree. *)

val synthetic : seed:int -> t
(** Build the synthetic raster.  Deterministic in [seed]. *)

val density : t -> lat_deg:float -> lon_deg:float -> float
(** Raw density at a point (arbitrary units, >= 0). *)

val is_land : t -> lat_deg:float -> lon_deg:float -> bool
(** Whether the cell is part of a synthetic land mass. *)

val cell_probabilities : t -> smoothing:float -> float array
(** Per-cell sampling probabilities p_alpha = (density + gamma) /
    sum(density + gamma) (Eq. 8), row-major with index
    [row * grid_cols + col], row 0 at latitude -90. *)

type sampler
(** Precomputed cumulative distribution for O(log n) location draws;
    build once, sample millions of times. *)

val make_sampler : t -> smoothing:float -> land_only:bool -> sampler
(** [make_sampler t ~smoothing ~land_only] builds a sampler over
    {!cell_probabilities}; with [land_only] ocean cells get zero
    probability (ground relays and gateways sit on land). *)

val sample : sampler -> Sate_util.Rng.t -> float * float
(** Draw a (lat_deg, lon_deg) location, uniform within the chosen
    cell. *)

val sample_location :
  t -> smoothing:float -> Sate_util.Rng.t -> float * float
(** One-shot convenience wrapper around {!make_sampler}/{!sample}. *)

val sample_land_location :
  t -> smoothing:float -> Sate_util.Rng.t -> float * float
(** Like {!sample_location} restricted to land cells. *)

val cell_of : lat_deg:float -> lon_deg:float -> int
(** Row-major cell index of a coordinate. *)
