(** Spherical-Earth geodesy for satellite-network geometry.

    Positions are Earth-Centered Earth-Fixed (ECEF) cartesian vectors
    in kilometres.  The paper's topology rules only need distances,
    latitudes, and elevation angles, for which a spherical Earth is
    the standard simulator-grade model (Hypatia uses the same). *)

val earth_radius_km : float
(** Mean Earth radius, 6371.0 km. *)

val speed_of_light_km_s : float
(** c = 299,792.458 km/s, for propagation-delay computation. *)

val mu_earth : float
(** Standard gravitational parameter of Earth, km^3/s^2. *)

type vec3 = { x : float; y : float; z : float }
(** Cartesian vector (km). *)

val add : vec3 -> vec3 -> vec3
val sub : vec3 -> vec3 -> vec3
val scale : float -> vec3 -> vec3
val dot : vec3 -> vec3 -> float
val cross : vec3 -> vec3 -> vec3
val norm : vec3 -> float
val distance : vec3 -> vec3 -> float
(** Euclidean distance in km. *)

val of_lat_lon : lat_deg:float -> lon_deg:float -> alt_km:float -> vec3
(** ECEF position of a point at geodetic latitude/longitude (degrees)
    and altitude above the surface. *)

val latitude_deg : vec3 -> float
(** Geocentric latitude in degrees, in \[-90, 90\]. *)

val longitude_deg : vec3 -> float
(** Longitude in degrees, in \[-180, 180\). *)

val elevation_angle_deg : ground:vec3 -> sat:vec3 -> float
(** Elevation of [sat] above the local horizon at [ground], degrees.
    Negative when the satellite is below the horizon. *)

val line_of_sight : vec3 -> vec3 -> bool
(** Whether the straight segment between two space positions clears
    the Earth sphere (ISL feasibility). *)

val propagation_delay_ms : vec3 -> vec3 -> float
(** One-way speed-of-light delay between two positions, milliseconds. *)

val great_circle_km : lat1:float -> lon1:float -> lat2:float -> lon2:float -> float
(** Surface great-circle distance between two lat/lon points (degrees). *)
