module Geo = Sate_geo.Geo
module Constellation = Sate_orbit.Constellation
module Shell = Sate_orbit.Shell

type cross_shell_mode = Lasers | Ground_relays | Isolated_shells

type config = {
  cross_shell : cross_shell_mode;
  high_latitude_deg : float;
  laser_max_km : float;
  relay_min_elevation_deg : float;
  isl_capacity_mbps : float;
  relay_capacity_mbps : float;
}

let default_config =
  { cross_shell = Lasers;
    high_latitude_deg = 75.0;
    laser_max_km = 2000.0;
    relay_min_elevation_deg = 25.0;
    isl_capacity_mbps = 200.0;
    relay_capacity_mbps = 200.0 }

type t = {
  config : config;
  constellation : Constellation.t;
  relays : Geo.vec3 array;
  relay_index : Spatial_index.t option;
  partner_up : int option array; (* laser partner in the shell above *)
  partner_down : int option array; (* laser partner in the shell below *)
  relay_partner : int option array; (* relay index per satellite *)
  relay_retry_at : float array; (* earliest next relay search per satellite *)
  mutable last_time : float;
}

let create ?(config = default_config) ?relays constellation =
  let relays =
    match relays with
    | Some r -> r
    | None -> (
        match config.cross_shell with
        | Ground_relays -> Relay_sites.generate ~seed:42 ()
        | Lasers | Isolated_shells -> [||])
  in
  let n = Constellation.size constellation in
  { config;
    constellation;
    relays;
    relay_index =
      (if Array.length relays > 0 then Some (Spatial_index.build relays) else None);
    partner_up = Array.make n None;
    partner_down = Array.make n None;
    relay_partner = Array.make n None;
    relay_retry_at = Array.make n Float.neg_infinity;
    last_time = Float.neg_infinity }

let config t = t.config

let constellation t = t.constellation

let num_relays t = Array.length t.relays

let reset t =
  Array.fill t.partner_up 0 (Array.length t.partner_up) None;
  Array.fill t.partner_down 0 (Array.length t.partner_down) None;
  Array.fill t.relay_partner 0 (Array.length t.relay_partner) None;
  Array.fill t.relay_retry_at 0 (Array.length t.relay_retry_at) Float.neg_infinity;
  t.last_time <- Float.neg_infinity

(* Shell-internal grid links.  Intra-orbit links are permanent;
   inter-orbit links require both endpoints below the high-latitude
   threshold. *)
let grid_links t positions add =
  let c = t.constellation in
  let shells = Constellation.shells c in
  Array.iteri
    (fun s (sh : Shell.t) ->
      let planes = sh.Shell.planes and per = sh.Shell.sats_per_plane in
      let id plane slot = Constellation.id_of_coord c { shell = s; plane; slot } in
      let low_latitude i =
        Float.abs (Geo.latitude_deg positions.(i)) <= t.config.high_latitude_deg
      in
      for p = 0 to planes - 1 do
        for k = 0 to per - 1 do
          let a = id p k in
          (* Intra-orbit: next slot on the same ring (skip the wrap
             duplicate when the ring has only two satellites). *)
          if per > 1 && (k < per - 1 || per > 2) then begin
            let b = id p ((k + 1) mod per) in
            add a b Link.Intra_orbit (Geo.distance positions.(a) positions.(b))
              t.config.isl_capacity_mbps
          end;
          (* Inter-orbit: same slot on the next plane. *)
          if planes > 1 && (p < planes - 1 || planes > 2) then begin
            let b = id ((p + 1) mod planes) k in
            if low_latitude a && low_latitude b then
              add a b Link.Inter_orbit
                (Geo.distance positions.(a) positions.(b))
                t.config.isl_capacity_mbps
          end
        done
      done)
    shells

(* Shell boundaries as (first_id, size) pairs, in shell order. *)
let shell_ranges c =
  let shells = Constellation.shells c in
  let ranges = Array.make (Array.length shells) (0, 0) in
  let off = ref 0 in
  Array.iteri
    (fun s sh ->
      ranges.(s) <- (!off, Shell.size sh);
      off := !off + Shell.size sh)
    shells;
  ranges

(* Cross-shell laser pairing with hysteresis: keep the current
   partner while in range and in line of sight, otherwise re-pair to
   the nearest satellite of the target shell. *)
let laser_links t positions add =
  let c = t.constellation in
  let ranges = shell_ranges c in
  let n_shells = Array.length ranges in
  let pair_one index target_base partner i =
    let p = positions.(i) in
    let keep =
      match partner.(i) with
      | Some j when
          Geo.distance p positions.(j) <= t.config.laser_max_km
          && Geo.line_of_sight p positions.(j) -> true
      | Some _ | None -> false
    in
    if not keep then
      partner.(i) <-
        (match Spatial_index.nearest index p ~max_km:t.config.laser_max_km with
        | Some (local, _) when Geo.line_of_sight p positions.(target_base + local) ->
            Some (target_base + local)
        | Some _ | None -> None);
    match partner.(i) with
    | Some j ->
        add i j Link.Cross_shell_laser (Geo.distance p positions.(j))
          t.config.isl_capacity_mbps
    | None -> ()
  in
  for s = 0 to n_shells - 2 do
    let lo_base, lo_size = ranges.(s) in
    let hi_base, hi_size = ranges.(s + 1) in
    let hi_index =
      Spatial_index.build (Array.sub positions hi_base hi_size)
    in
    let lo_index = Spatial_index.build (Array.sub positions lo_base lo_size) in
    for i = lo_base to lo_base + lo_size - 1 do
      pair_one hi_index hi_base t.partner_up i
    done;
    for j = hi_base to hi_base + hi_size - 1 do
      pair_one lo_index lo_base t.partner_down j
    done
  done

(* Bent-pipe pairing: keep the current relay while its elevation stays
   above the threshold, otherwise the nearest visible relay. *)
let relay_links t positions add =
  match t.relay_index with
  | None -> ()
  | Some index ->
      let num_sats = Constellation.size t.constellation in
      (* Slant range at a 25-degree elevation mask stays under
         ~1200 km for LEO altitudes; 1800 km leaves slack for
         Iridium's 781 km shell. *)
      let max_slant_km = 1800.0 in
      (* A satellite with no visible relay (mid-ocean) stays out of
         range for many consecutive snapshots; back off instead of
         re-scanning every 12.5 ms. *)
      let retry_backoff_s = 0.5 in
      let visible relay_idx sat_pos =
        Geo.elevation_angle_deg ~ground:t.relays.(relay_idx) ~sat:sat_pos
        >= t.config.relay_min_elevation_deg
      in
      for i = 0 to num_sats - 1 do
        let p = positions.(i) in
        let keep =
          match t.relay_partner.(i) with
          | Some r when visible r p -> true
          | Some _ | None -> false
        in
        if (not keep) && t.relay_retry_at.(i) <= t.last_time then begin
          let candidates = Spatial_index.within index p ~radius_km:max_slant_km in
          let best =
            List.fold_left
              (fun acc (r, d) ->
                if visible r p then
                  match acc with
                  | Some (_, bd) when bd <= d -> acc
                  | Some _ | None -> Some (r, d)
                else acc)
              None candidates
          in
          t.relay_partner.(i) <- Option.map fst best;
          if best = None then t.relay_retry_at.(i) <- t.last_time +. retry_backoff_s
        end
        else if not keep then t.relay_partner.(i) <- None;
        match t.relay_partner.(i) with
        | Some r ->
            add i (num_sats + r) Link.Relay
              (Geo.distance p t.relays.(r))
              t.config.relay_capacity_mbps
        | None -> ()
      done

let snapshot t ~time_s =
  if time_s < t.last_time then
    invalid_arg "Builder.snapshot: time must be non-decreasing (use reset)";
  t.last_time <- time_s;
  let positions = Constellation.positions t.constellation ~time_s in
  let acc = Hashtbl.create 4096 in
  let add u v kind length_km capacity_mbps =
    let key = (min u v, max u v) in
    if not (Hashtbl.mem acc key) then
      Hashtbl.replace acc key { Link.u; v; kind; capacity_mbps; length_km }
  in
  grid_links t positions add;
  (match t.config.cross_shell with
  | Lasers -> laser_links t positions add
  | Ground_relays -> relay_links t positions add
  | Isolated_shells -> ());
  let links = Hashtbl.fold (fun _ l acc -> l :: acc) acc [] in
  Snapshot.make ~time_s
    ~num_sats:(Constellation.size t.constellation)
    ~sat_positions:positions ~relay_positions:t.relays ~links
