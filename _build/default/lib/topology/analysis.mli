(** Topology-dynamics analyses from Section 2.3.

    These drive Fig. 4: topology holding time (THT), link exclusion
    versus TE-interval length, and configured-path obsolescence. *)

val fold_snapshots :
  Builder.t ->
  start_s:float ->
  dt_s:float ->
  count:int ->
  init:'a ->
  f:('a -> Snapshot.t -> 'a) ->
  'a
(** Stream [count] snapshots sampled every [dt_s] seconds through [f]
    without retaining them (full-Starlink streams would not fit in
    memory). *)

val holding_times_ms :
  Builder.t -> start_s:float -> dt_s:float -> count:int -> float array
(** Topology holding times: each entry is [dt_s * 1000 * k] for a
    maximal run of [k] consecutive snapshots with identical link sets
    (Fig. 4a; Sec. 2.3.1 measures with dt = 12.5 ms). *)

val exclusion_series :
  Builder.t ->
  start_s:float ->
  dt_s:float ->
  intervals:int list ->
  (int * float) list
(** For each interval length (in snapshots, ascending), the ratio of
    potentially-changing ISLs (non-intra-orbit) that are absent from
    at least one snapshot of the interval — the links a TE round of
    that duration must exclude (Fig. 4c).  Computed incrementally in
    one pass up to the largest interval. *)

val path_obsolescence :
  Builder.t ->
  start_s:float ->
  dt_s:float ->
  checkpoints:int list ->
  paths:int list list ->
  (int * float) list
(** For each checkpoint (in snapshots, ascending), the fraction of the
    given configured paths that have become invalid — some consecutive
    hop no longer linked (Fig. 4b). *)

val random_link_failures :
  Snapshot.t -> rate:float -> Sate_util.Rng.t -> Snapshot.t * (int * int) list
(** Remove each link independently with probability [rate] (Appendix
    H.3).  Returns the degraded snapshot and the failed endpoint
    pairs. *)
