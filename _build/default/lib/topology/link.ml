module Geo = Sate_geo.Geo

type kind = Intra_orbit | Inter_orbit | Cross_shell_laser | Relay

type t = {
  u : int;
  v : int;
  kind : kind;
  capacity_mbps : float;
  length_km : float;
}

let kind_to_string = function
  | Intra_orbit -> "intra-orbit"
  | Inter_orbit -> "inter-orbit"
  | Cross_shell_laser -> "cross-shell-laser"
  | Relay -> "relay"

let key t = if t.u <= t.v then (t.u, t.v) else (t.v, t.u)

let compare_key (a1, b1) (a2, b2) =
  match compare a1 a2 with 0 -> compare b1 b2 | c -> c

let delay_ms t = t.length_km /. Geo.speed_of_light_km_s *. 1000.0
