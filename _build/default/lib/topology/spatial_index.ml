module Geo = Sate_geo.Geo

(* 3D grid hash over ECEF space.  Cell edge of 500 km keeps bucket
   populations small for LEO shells while the ring lower bound
   [(ring - 1) * cell_km] stays tight. *)
let cell_km = 500.0

type t = {
  positions : Geo.vec3 array;
  buckets : (int * int * int, int list) Hashtbl.t;
}

let cell_of (p : Geo.vec3) =
  ( int_of_float (Float.floor (p.x /. cell_km)),
    int_of_float (Float.floor (p.y /. cell_km)),
    int_of_float (Float.floor (p.z /. cell_km)) )

let build positions =
  let buckets = Hashtbl.create (max 16 (Array.length positions / 2)) in
  Array.iteri
    (fun i p ->
      let key = cell_of p in
      let prev = Option.value ~default:[] (Hashtbl.find_opt buckets key) in
      Hashtbl.replace buckets key (i :: prev))
    positions;
  { positions; buckets }

(* Iterate over the shell of cells at Chebyshev ring [r] around
   [(cx, cy, cz)], applying [f] to every indexed point inside. *)
let iter_ring t (cx, cy, cz) r f =
  let visit key =
    match Hashtbl.find_opt t.buckets key with
    | None -> ()
    | Some ids -> List.iter f ids
  in
  if r = 0 then visit (cx, cy, cz)
  else
    for dx = -r to r do
      for dy = -r to r do
        if abs dx = r || abs dy = r then
          for dz = -r to r do
            visit (cx + dx, cy + dy, cz + dz)
          done
        else begin
          visit (cx + dx, cy + dy, cz - r);
          visit (cx + dx, cy + dy, cz + r)
        end
      done
    done

let nearest t p ~max_km =
  let center = cell_of p in
  let best = ref None in
  let best_d = ref Float.infinity in
  let max_ring = int_of_float (Float.ceil (max_km /. cell_km)) + 1 in
  let consider i =
    let d = Geo.distance p t.positions.(i) in
    if d < !best_d then begin
      best_d := d;
      best := Some i
    end
  in
  let rec loop r =
    if r <= max_ring then begin
      (* Any point in ring r is at least (r - 1) * cell_km away; once
         that exceeds the best found we can stop. *)
      let ring_lower = float_of_int (r - 1) *. cell_km in
      if ring_lower <= !best_d && ring_lower <= max_km then begin
        iter_ring t center r consider;
        loop (r + 1)
      end
    end
  in
  loop 0;
  match !best with
  | Some i when !best_d <= max_km -> Some (i, !best_d)
  | Some _ | None -> None

let within t p ~radius_km =
  let center = cell_of p in
  let max_ring = int_of_float (Float.ceil (radius_km /. cell_km)) + 1 in
  let acc = ref [] in
  let consider i =
    let d = Geo.distance p t.positions.(i) in
    if d <= radius_km then acc := (i, d) :: !acc
  in
  for r = 0 to max_ring do
    let ring_lower = float_of_int (r - 1) *. cell_km in
    if ring_lower <= radius_km then iter_ring t center r consider
  done;
  !acc
