(** Latitude/longitude bucket index for nearest-neighbour queries.

    Cross-shell laser pairing and ground-relay visibility need, for
    every satellite, the nearest node of another set.  Brute force is
    O(n^2) per snapshot; this index buckets positions into fixed
    angular cells and searches expanding rings, which makes full
    Starlink snapshot generation tractable on a laptop. *)

type t

val build : Sate_geo.Geo.vec3 array -> t
(** Index the given positions (indices into the array are the ids
    returned by queries). *)

val nearest :
  t -> Sate_geo.Geo.vec3 -> max_km:float -> (int * float) option
(** [nearest t p ~max_km] returns the id and distance of the indexed
    position closest to [p], provided it is within [max_km]. *)

val within : t -> Sate_geo.Geo.vec3 -> radius_km:float -> (int * float) list
(** All indexed positions within [radius_km] of [p], unordered. *)
