lib/topology/analysis.mli: Builder Sate_util Snapshot
