lib/topology/relay_sites.mli: Sate_geo
