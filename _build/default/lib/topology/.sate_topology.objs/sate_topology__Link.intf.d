lib/topology/link.mli:
