lib/topology/relay_sites.ml: Array Sate_geo Sate_util
