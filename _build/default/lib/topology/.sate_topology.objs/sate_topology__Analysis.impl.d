lib/topology/analysis.ml: Array Builder Hashtbl Link List Option Sate_util Snapshot
