lib/topology/spatial_index.mli: Sate_geo
