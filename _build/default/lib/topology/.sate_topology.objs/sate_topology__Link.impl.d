lib/topology/link.ml: Sate_geo
