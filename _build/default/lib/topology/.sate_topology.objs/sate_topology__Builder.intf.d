lib/topology/builder.mli: Sate_geo Sate_orbit Snapshot
