lib/topology/spatial_index.ml: Array Float Hashtbl List Option Sate_geo
