lib/topology/snapshot.ml: Array Hashtbl Link List Sate_geo
