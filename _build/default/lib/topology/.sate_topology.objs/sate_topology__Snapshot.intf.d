lib/topology/snapshot.mli: Link Sate_geo
