lib/topology/builder.ml: Array Float Hashtbl Link List Option Relay_sites Sate_geo Sate_orbit Snapshot Spatial_index
