module Geo = Sate_geo.Geo

type t = {
  time_s : float;
  num_sats : int;
  num_relays : int;
  sat_positions : Geo.vec3 array;
  relay_positions : Geo.vec3 array;
  links : Link.t array;
  adj : (int * int) list array;
}

let num_nodes t = t.num_sats + t.num_relays

let make ~time_s ~num_sats ~sat_positions ~relay_positions ~links =
  let num_relays = Array.length relay_positions in
  let n = num_sats + num_relays in
  let links = Array.of_list links in
  let seen = Hashtbl.create (Array.length links) in
  Array.iter
    (fun l ->
      if l.Link.u = l.Link.v then invalid_arg "Snapshot.make: self-loop";
      if l.Link.u < 0 || l.Link.u >= n || l.Link.v < 0 || l.Link.v >= n then
        invalid_arg "Snapshot.make: endpoint out of range";
      let k = Link.key l in
      if Hashtbl.mem seen k then invalid_arg "Snapshot.make: duplicate link";
      Hashtbl.add seen k ())
    links;
  let adj = Array.make n [] in
  Array.iteri
    (fun i l ->
      adj.(l.Link.u) <- (l.Link.v, i) :: adj.(l.Link.u);
      adj.(l.Link.v) <- (l.Link.u, i) :: adj.(l.Link.v))
    links;
  { time_s; num_sats; num_relays; sat_positions; relay_positions; links; adj }

let position t i =
  if i < t.num_sats then t.sat_positions.(i)
  else t.relay_positions.(i - t.num_sats)

let neighbors t i = t.adj.(i)

let find_link t u v =
  List.find_map
    (fun (nbr, li) -> if nbr = v then Some t.links.(li) else None)
    t.adj.(u)

let link_keys t =
  let keys = Array.map Link.key t.links in
  Array.sort Link.compare_key keys;
  keys

let equal_topology a b =
  Array.length a.links = Array.length b.links
  && link_keys a = link_keys b

let diff a b =
  let ka = link_keys a and kb = link_keys b in
  let in_b = Hashtbl.create (Array.length kb) in
  Array.iter (fun k -> Hashtbl.replace in_b k ()) kb;
  let in_a = Hashtbl.create (Array.length ka) in
  Array.iter (fun k -> Hashtbl.replace in_a k ()) ka;
  let removed = Array.fold_left (fun acc k -> if Hashtbl.mem in_b k then acc else acc + 1) 0 ka in
  let added = Array.fold_left (fun acc k -> if Hashtbl.mem in_a k then acc else acc + 1) 0 kb in
  (added, removed)

let degree t i = List.length t.adj.(i)

let remove_links t pairs =
  let doomed = Hashtbl.create (List.length pairs) in
  List.iter
    (fun (u, v) -> Hashtbl.replace doomed (min u v, max u v) ())
    pairs;
  let links =
    Array.to_list t.links
    |> List.filter (fun l -> not (Hashtbl.mem doomed (Link.key l)))
  in
  make ~time_s:t.time_s ~num_sats:t.num_sats ~sat_positions:t.sat_positions
    ~relay_positions:t.relay_positions ~links

let path_valid t path =
  let rec ok = function
    | [] | [ _ ] -> true
    | u :: (v :: _ as rest) -> (
        match find_link t u v with Some _ -> ok rest | None -> false)
  in
  ok path
