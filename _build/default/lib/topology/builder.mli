(** Stateful topology-snapshot generator.

    Implements the link rules of Sections 2.1 and 2.3.1:

    - intra-orbit ISLs are permanent;
    - inter-orbit ISLs deactivate while either endpoint is above the
      high-latitude threshold (default 75 degrees);
    - cross-shell lasers pair each satellite with the nearest
      satellite of the adjacent shell and, thanks to hysteresis, hold
      until the distance exceeds the laser range (default 2,000 km);
    - bent-pipe relay links pair each satellite with the nearest
      ground relay and hold while the elevation angle stays above the
      threshold (default 25 degrees).

    Hysteresis means snapshots must be requested in non-decreasing
    time order; the builder keeps the current pairings between calls
    exactly as real laser terminals keep lock until geometry breaks. *)

type cross_shell_mode =
  | Lasers  (** Fig. 2 (b): direct lasers between adjacent shells. *)
  | Ground_relays  (** Fig. 2 (c): bent-pipe via ground relays. *)
  | Isolated_shells  (** No cross-shell connectivity (analysis only). *)

type config = {
  cross_shell : cross_shell_mode;
  high_latitude_deg : float;  (** Inter-orbit cut-off, default 75. *)
  laser_max_km : float;  (** Cross-shell laser range, default 2000. *)
  relay_min_elevation_deg : float;  (** Bent-pipe cut-off, default 25. *)
  isl_capacity_mbps : float;  (** Default 200 (scaled units, Sec. 4). *)
  relay_capacity_mbps : float;  (** Default 200. *)
}

val default_config : config
(** Paper defaults: lasers, 75 deg, 2000 km, 25 deg, 200 Mbps. *)

type t

val create :
  ?config:config ->
  ?relays:Sate_geo.Geo.vec3 array ->
  Sate_orbit.Constellation.t ->
  t
(** [create constellation] prepares a generator.  [relays] defaults to
    the 222 default sites when the mode is [Ground_relays], and to
    none otherwise. *)

val config : t -> config

val constellation : t -> Sate_orbit.Constellation.t

val num_relays : t -> int

val snapshot : t -> time_s:float -> Snapshot.t
(** Produce the topology at [time_s].  Calls must use non-decreasing
    times (hysteresis); a decreasing time raises [Invalid_argument]. *)

val reset : t -> unit
(** Forget pairing state so time may restart from zero. *)
