(** Ground-relay site placement.

    The paper uses 222 real-world relay locations from satellitemap
    [49]; offline we place the same number of sites on land, biased by
    the synthetic population raster (relays cluster where operators
    deploy them: populated land). *)

val generate :
  ?count:int -> ?smoothing:float -> seed:int -> unit -> Sate_geo.Geo.vec3 array
(** [generate ~seed ()] returns relay ECEF positions at the Earth
    surface.  Default [count] is 222 per the paper, [smoothing] 5.0 so
    remote land also hosts the occasional relay. *)

val default_count : int
(** 222, the number of real-world sites the paper uses. *)
