(** Inter-satellite and bent-pipe link representation. *)

type kind =
  | Intra_orbit  (** Same shell, same plane, adjacent slots (stable). *)
  | Inter_orbit
      (** Same shell, adjacent planes; deactivated above the
          high-latitude threshold (Section 2.1). *)
  | Cross_shell_laser
      (** Laser to the nearest satellite in the adjacent shell; holds
          until the distance exceeds the laser range (Fig. 2b). *)
  | Relay
      (** Bent-pipe RF hop between a satellite and a ground relay;
          holds while the elevation angle stays above the threshold
          (Fig. 2c). *)

type t = {
  u : int;  (** First endpoint (node id; relays live after satellites). *)
  v : int;  (** Second endpoint. *)
  kind : kind;
  capacity_mbps : float;
  length_km : float;  (** Geometric length at snapshot time. *)
}

val kind_to_string : kind -> string

val key : t -> int * int
(** Canonical endpoint pair [(min u v, max u v)] used for snapshot
    diffing; a topology is its set of keys. *)

val compare_key : int * int -> int * int -> int

val delay_ms : t -> float
(** Propagation delay across the link. *)
