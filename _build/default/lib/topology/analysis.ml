module Rng = Sate_util.Rng

let fold_snapshots builder ~start_s ~dt_s ~count ~init ~f =
  let acc = ref init in
  for i = 0 to count - 1 do
    let time_s = start_s +. (float_of_int i *. dt_s) in
    acc := f !acc (Builder.snapshot builder ~time_s)
  done;
  !acc

let holding_times_ms builder ~start_s ~dt_s ~count =
  let runs = ref [] in
  let finish (prev, run) =
    ignore prev;
    if run > 0 then runs := float_of_int run *. dt_s *. 1000.0 :: !runs
  in
  let final =
    fold_snapshots builder ~start_s ~dt_s ~count ~init:(None, 0)
      ~f:(fun (prev, run) snap ->
        match prev with
        | None -> (Some snap, 1)
        | Some p ->
            if Snapshot.equal_topology p snap then (Some snap, run + 1)
            else begin
              runs := float_of_int run *. dt_s *. 1000.0 :: !runs;
              (Some snap, 1)
            end)
  in
  finish final;
  Array.of_list (List.rev !runs)

(* A link "potentially changes" if its kind is anything but
   intra-orbit (Sec. 2.3.2: the number is primarily contributed by
   cross-shell links). *)
let changeable l =
  match l.Link.kind with
  | Link.Intra_orbit -> false
  | Link.Inter_orbit | Link.Cross_shell_laser | Link.Relay -> true

let exclusion_series builder ~start_s ~dt_s ~intervals =
  let intervals = List.sort_uniq compare intervals in
  let max_count = List.fold_left max 1 intervals in
  (* union: changeable links seen so far; present: count of snapshots
     containing each. *)
  let seen : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let results = ref [] in
  let remaining = ref intervals in
  let record idx =
    match !remaining with
    | k :: rest when k = idx ->
        let total = Hashtbl.length seen in
        let stable =
          Hashtbl.fold (fun _ c acc -> if c = idx then acc + 1 else acc) seen 0
        in
        let ratio =
          if total = 0 then 0.0
          else float_of_int (total - stable) /. float_of_int total
        in
        results := (k, ratio) :: !results;
        remaining := rest
    | _ -> ()
  in
  let _ =
    fold_snapshots builder ~start_s ~dt_s ~count:max_count ~init:0
      ~f:(fun idx snap ->
        Array.iter
          (fun l ->
            if changeable l then begin
              let key = Link.key l in
              let c = Option.value ~default:0 (Hashtbl.find_opt seen key) in
              Hashtbl.replace seen key (c + 1)
            end)
          snap.Snapshot.links;
        let idx = idx + 1 in
        record idx;
        idx)
  in
  List.rev !results

let path_obsolescence builder ~start_s ~dt_s ~checkpoints ~paths =
  let checkpoints = List.sort_uniq compare checkpoints in
  let max_count = List.fold_left max 1 checkpoints in
  let paths = Array.of_list paths in
  let n = Array.length paths in
  let dead = Array.make n false in
  let results = ref [] in
  let remaining = ref checkpoints in
  let record idx =
    match !remaining with
    | k :: rest when k = idx ->
        let broken = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 dead in
        let frac = if n = 0 then 0.0 else float_of_int broken /. float_of_int n in
        results := (k, frac) :: !results;
        remaining := rest
    | _ -> ()
  in
  let _ =
    fold_snapshots builder ~start_s ~dt_s ~count:max_count ~init:0
      ~f:(fun idx snap ->
        Array.iteri
          (fun i path ->
            if (not dead.(i)) && not (Snapshot.path_valid snap path) then
              dead.(i) <- true)
          paths;
        let idx = idx + 1 in
        record idx;
        idx)
  in
  List.rev !results

let random_link_failures snap ~rate rng =
  let failed = ref [] in
  Array.iter
    (fun l ->
      if Rng.float rng 1.0 < rate then failed := Link.key l :: !failed)
    snap.Snapshot.links;
  (Snapshot.remove_links snap !failed, !failed)
