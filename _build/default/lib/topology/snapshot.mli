(** A topology snapshot: node positions plus the live link set at one
    instant.

    Nodes are numbered [0 .. num_sats - 1] for satellites and
    [num_sats .. num_sats + num_relays - 1] for ground relays (relays
    participate as graph nodes only in the bent-pipe scenario). *)

type t = {
  time_s : float;
  num_sats : int;
  num_relays : int;
  sat_positions : Sate_geo.Geo.vec3 array;
  relay_positions : Sate_geo.Geo.vec3 array;
  links : Link.t array;
  adj : (int * int) list array;
      (** [adj.(node)] lists [(neighbour, link_index)] pairs. *)
}

val make :
  time_s:float ->
  num_sats:int ->
  sat_positions:Sate_geo.Geo.vec3 array ->
  relay_positions:Sate_geo.Geo.vec3 array ->
  links:Link.t list ->
  t
(** Build a snapshot, computing adjacency.  Self-loops and duplicate
    endpoint pairs are rejected with [Invalid_argument]. *)

val num_nodes : t -> int
(** Satellites plus relays. *)

val position : t -> int -> Sate_geo.Geo.vec3
(** Position of any node (satellite or relay). *)

val neighbors : t -> int -> (int * int) list
(** [(neighbour, link_index)] pairs of a node. *)

val find_link : t -> int -> int -> Link.t option
(** The link joining two nodes, if present. *)

val link_keys : t -> (int * int) array
(** Sorted canonical endpoint pairs; two snapshots with equal key
    arrays have the same topology. *)

val equal_topology : t -> t -> bool
(** Whether two snapshots have identical link sets. *)

val diff : t -> t -> int * int
(** [(added, removed)] link counts going from the first snapshot to
    the second. *)

val degree : t -> int -> int

val remove_links : t -> (int * int) list -> t
(** Snapshot with the given endpoint pairs removed (failure
    injection); unknown pairs are ignored. *)

val path_valid : t -> int list -> bool
(** Whether consecutive nodes of a path are all connected in this
    snapshot. *)
