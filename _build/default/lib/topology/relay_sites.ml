module Geo = Sate_geo.Geo
module Population = Sate_geo.Population
module Rng = Sate_util.Rng

let default_count = 222

let generate ?(count = default_count) ?(smoothing = 5.0) ~seed () =
  let rng = Rng.create seed in
  let pop = Population.synthetic ~seed in
  let sampler = Population.make_sampler pop ~smoothing ~land_only:true in
  Array.init count (fun _ ->
      let lat_deg, lon_deg = Population.sample sampler rng in
      Geo.of_lat_lon ~lat_deg ~lon_deg ~alt_km:0.0)
