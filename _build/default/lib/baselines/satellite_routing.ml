module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Rng = Sate_util.Rng

let solve ?(seed = 23) (inst : Instance.t) =
  let rng = Rng.create seed in
  let alloc = Allocation.zeros inst in
  (* Uncoordinated greedy: each commodity pushes its whole demand on
     one shortest candidate path, occasionally deflecting to a random
     alternative (queue-gradient noise).  No commodity sees the
     others, so congested hot spots emerge exactly as with distributed
     backpressure under load. *)
  Array.iteri
    (fun f (c : Instance.commodity) ->
      let n = Array.length c.Instance.paths in
      if n > 0 then begin
        let best = ref 0 in
        for p = 1 to n - 1 do
          if
            Sate_paths.Path.hops c.Instance.paths.(p)
            < Sate_paths.Path.hops c.Instance.paths.(!best)
          then best := p
        done;
        let choice = if n > 1 && Rng.float rng 1.0 < 0.2 then Rng.int rng n else !best in
        alloc.(f).(choice) <- c.Instance.demand_mbps
      end)
    inst.Instance.commodities;
  Allocation.trim inst alloc
