module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Snapshot = Sate_topology.Snapshot
module Link = Sate_topology.Link
module Rng = Sate_util.Rng

let scale_snapshot (snap : Snapshot.t) factor =
  let links =
    Array.to_list snap.Snapshot.links
    |> List.map (fun l -> { l with Link.capacity_mbps = l.Link.capacity_mbps *. factor })
  in
  (* Links are passed in array order, so link indices (and therefore
     the commodities' [path_links]) stay valid. *)
  Snapshot.make ~time_s:snap.Snapshot.time_s ~num_sats:snap.Snapshot.num_sats
    ~sat_positions:snap.Snapshot.sat_positions
    ~relay_positions:snap.Snapshot.relay_positions ~links

let solve_timed ?(k = 4) ?(seed = 11) (inst : Instance.t) =
  let nc = Array.length inst.Instance.commodities in
  if nc = 0 then (Allocation.zeros inst, 0.0)
  else begin
    let k = max 1 (min k nc) in
    let rng = Rng.create seed in
    let assignment = Array.init nc (fun _ -> Rng.int rng k) in
    let factor = 1.0 /. float_of_int k in
    let scaled_snap = scale_snapshot inst.Instance.snapshot factor in
    let scale_caps = Array.map (fun c -> c *. factor) in
    let alloc = Allocation.zeros inst in
    let worst_ms = ref 0.0 in
    for part = 0 to k - 1 do
      let members =
        Array.to_list (Array.init nc Fun.id)
        |> List.filter (fun f -> assignment.(f) = part)
      in
      if members <> [] then begin
        let sub =
          { Instance.snapshot = scaled_snap;
            commodities =
              Array.of_list (List.map (fun f -> inst.Instance.commodities.(f)) members);
            up_caps = scale_caps inst.Instance.up_caps;
            down_caps = scale_caps inst.Instance.down_caps }
        in
        let t0 = Unix.gettimeofday () in
        let sub_alloc = Sate_te.Lp_solver.solve sub in
        worst_ms := Float.max !worst_ms ((Unix.gettimeofday () -. t0) *. 1000.0);
        List.iteri
          (fun si f -> Array.blit sub_alloc.(si) 0 alloc.(f) 0 (Array.length sub_alloc.(si)))
          members
      end
    done;
    (* Sub-allocations use 1/k capacities each, so the union is
       feasible; trim guards against numerical residue only. *)
    let alloc = if Allocation.is_feasible inst alloc then alloc else Allocation.trim inst alloc in
    (alloc, !worst_ms)
  end

let solve ?k ?seed inst = fst (solve_timed ?k ?seed inst)
