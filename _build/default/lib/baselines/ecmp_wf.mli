(** ECMP with water filling [35] (B4's allocation scheme).

    Each commodity spreads equally over its minimum-hop candidate
    paths; allocations rise uniformly (progressive filling) until a
    path hits a saturated link or the commodity's demand is met.
    Saturated paths freeze; filling continues on the rest.  This is
    the best-performing throughput heuristic baseline in Fig. 8a /
    Fig. 10. *)

val solve : Sate_te.Instance.t -> Sate_te.Allocation.t
(** Feasible allocation (no trimming required by construction, but
    the result also passes {!Sate_te.Allocation.is_feasible}). *)
