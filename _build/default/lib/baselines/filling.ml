module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Snapshot = Sate_topology.Snapshot
module Link = Sate_topology.Link

let eps = 1e-9

let solve ~path_choice (inst : Instance.t) =
  let alloc = Allocation.zeros inst in
  let commodities = inst.Instance.commodities in
  let nc = Array.length commodities in
  let links = inst.Instance.snapshot.Snapshot.links in
  let headroom = Array.map (fun l -> l.Link.capacity_mbps) links in
  let up_room = Array.copy inst.Instance.up_caps in
  let down_room = Array.copy inst.Instance.down_caps in
  let remaining = Array.map (fun c -> c.Instance.demand_mbps) commodities in
  let active_paths = Array.map path_choice commodities in
  let active = Array.map (fun ps -> ps <> [] ) active_paths in
  Array.iteri (fun f r -> if r <= eps then active.(f) <- false) remaining;
  let any_active () = Array.exists Fun.id active in
  let guard = ref (Array.length links + Array.length (Allocation.zeros inst) + nc * 4 + 16) in
  while any_active () && !guard > 0 do
    decr guard;
    (* Per-unit-increment load coefficient on every resource. *)
    let link_coeff = Array.make (Array.length links) 0.0 in
    let up_coeff = Array.make (Array.length up_room) 0.0 in
    let down_coeff = Array.make (Array.length down_room) 0.0 in
    Array.iteri
      (fun f (c : Instance.commodity) ->
        if active.(f) then begin
          let share = 1.0 /. float_of_int (List.length active_paths.(f)) in
          List.iter
            (fun p ->
              Array.iter
                (fun li -> link_coeff.(li) <- link_coeff.(li) +. share)
                c.Instance.path_links.(p))
            active_paths.(f);
          up_coeff.(c.Instance.src) <- up_coeff.(c.Instance.src) +. 1.0;
          down_coeff.(c.Instance.dst) <- down_coeff.(c.Instance.dst) +. 1.0
        end)
      commodities;
    (* Largest uniform increment before something saturates. *)
    let t = ref Float.infinity in
    Array.iteri
      (fun li coeff -> if coeff > eps then t := Float.min !t (headroom.(li) /. coeff))
      link_coeff;
    Array.iteri
      (fun node coeff ->
        if coeff > eps && Float.is_finite up_room.(node) then
          t := Float.min !t (up_room.(node) /. coeff))
      up_coeff;
    Array.iteri
      (fun node coeff ->
        if coeff > eps && Float.is_finite down_room.(node) then
          t := Float.min !t (down_room.(node) /. coeff))
      down_coeff;
    Array.iteri (fun f r -> if active.(f) then t := Float.min !t r) remaining;
    let t = if Float.is_finite !t then Float.max 0.0 !t else 0.0 in
    (* Apply the increment. *)
    Array.iteri
      (fun f (c : Instance.commodity) ->
        if active.(f) then begin
          let share = t /. float_of_int (List.length active_paths.(f)) in
          List.iter
            (fun p ->
              alloc.(f).(p) <- alloc.(f).(p) +. share;
              Array.iter
                (fun li -> headroom.(li) <- headroom.(li) -. share)
                c.Instance.path_links.(p))
            active_paths.(f);
          up_room.(c.Instance.src) <- up_room.(c.Instance.src) -. t;
          down_room.(c.Instance.dst) <- down_room.(c.Instance.dst) -. t;
          remaining.(f) <- remaining.(f) -. t
        end)
      commodities;
    (* Freeze saturated paths and satisfied/blocked commodities. *)
    Array.iteri
      (fun f (c : Instance.commodity) ->
        if active.(f) then begin
          if remaining.(f) <= eps then active.(f) <- false
          else begin
            active_paths.(f) <-
              List.filter
                (fun p ->
                  Array.for_all
                    (fun li -> headroom.(li) > eps)
                    c.Instance.path_links.(p))
                active_paths.(f);
            if
              active_paths.(f) = []
              || up_room.(c.Instance.src) <= eps
              || down_room.(c.Instance.dst) <= eps
            then active.(f) <- false
          end
        end)
      commodities
  done;
  (* Numerical safety: never hand out an infeasible allocation. *)
  if Allocation.is_feasible inst alloc then alloc else Allocation.trim inst alloc

let min_hop_paths (c : Instance.commodity) =
  if Array.length c.Instance.paths = 0 then []
  else begin
    let min_hops =
      Array.fold_left
        (fun acc p -> min acc (Sate_paths.Path.hops p))
        max_int c.Instance.paths
    in
    List.filter
      (fun p -> Sate_paths.Path.hops c.Instance.paths.(p) = min_hops)
      (List.init (Array.length c.Instance.paths) Fun.id)
  end

let all_paths (c : Instance.commodity) =
  List.init (Array.length c.Instance.paths) Fun.id
