(** Teal-like learning baseline [78].

    Architectural stand-in for Teal: a shared encoder feeding a
    {e fixed-size, position-specific} DNN allocator over {e all}
    ordered satellite pairs.  It reproduces the properties the paper's
    comparisons rest on:

    - the input is the dense [n^2 x (1 + k)] pair grid (demand plus k
      candidate-path features), so it cannot be pruned — input volume
      and inference cost grow with n^2 regardless of traffic sparsity
      ({!input_volume_bytes}, Fig. 8a);
    - the allocator's weights are tied to the pair/path ordering of
      the topology it was trained on, so a trained model does not
      transfer to unseen topologies (Sec. 2.4);
    - training cost grows quickly with scale (Fig. 9a).

    Following the paper, models are trained on a single static
    topology and only at scales where the dense input fits memory. *)

type t

val create : ?hidden:int -> ?seed:int -> num_sats:int -> k:int -> unit -> t
(** [hidden] defaults to 8 (scaled to CPU budgets). *)

val input_volume_bytes : t -> int
(** Dense per-data-point input size (the 263 GB problem of Sec. 2.4,
    at this scale). *)

val num_parameters : t -> int

val train :
  ?epochs:int -> ?lr:float -> t -> Sate_te.Instance.t list -> float
(** Supervised training against LP labels on the dense grid; returns
    wall-clock seconds. *)

val predict : t -> Sate_te.Instance.t -> Sate_te.Allocation.t
(** Trimmed allocation.  Raises [Invalid_argument] if the instance's
    satellite count differs from the trained scale. *)
