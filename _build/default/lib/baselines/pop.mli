(** POP: Partitioned Optimisation Problems [55].

    Randomly partitions the commodities into [k] sub-problems, each
    seeing [1/k] of every link/node capacity, solves each sub-problem
    exactly with the LP solver, and combines the sub-allocations.  The
    sub-problems are independent, so a deployment runs them on [k]
    solvers in parallel — {!solve_timed} therefore reports the
    wall-clock of the slowest sub-problem as POP's latency, as the
    paper does. *)

val solve :
  ?k:int -> ?seed:int -> Sate_te.Instance.t -> Sate_te.Allocation.t
(** Default [k] = 4 partitions. *)

val solve_timed :
  ?k:int -> ?seed:int -> Sate_te.Instance.t -> Sate_te.Allocation.t * float
(** Also return the simulated-parallel latency in milliseconds. *)
