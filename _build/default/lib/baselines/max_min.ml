let solve inst = Filling.solve ~path_choice:Filling.all_paths inst
