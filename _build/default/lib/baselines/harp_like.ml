open Sate_tensor
module A = Sate_nn.Autodiff
module Layers = Sate_nn.Layers
module Optimizer = Sate_nn.Optimizer
module Rng = Sate_util.Rng
module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Model = Sate_gnn.Model
module Te_graph = Sate_gnn.Te_graph
module Gat = Sate_gnn.Gat

type t = {
  base : Model.t;
  lift : Layers.linear; (* ratio -> embedding for the transformer stage *)
  path_attention : Gat.t;
  readout : Layers.linear;
  dim : int;
}

let create ?(hyper = Model.default_hyper) ?(seed = 13) () =
  let rng = Rng.create (seed + 1000) in
  { base = Model.create ~hyper ~seed ();
    lift = Layers.linear rng ~in_dim:1 ~out_dim:hyper.Model.dim;
    path_attention = Gat.create rng ~dim:hyper.Model.dim ~heads:hyper.Model.heads;
    readout = Layers.linear rng ~in_dim:hyper.Model.dim ~out_dim:1;
    dim = hyper.Model.dim }

let params t =
  Model.params t.base
  @ Layers.linear_params t.lift
  @ Gat.params t.path_attention
  @ Layers.linear_params t.readout

let num_parameters t = Layers.num_parameters (params t)

(* Edge-path transformer stage: dense attention among paths sharing a
   link.  The pair count grows with path density per link — the
   size-dependent cost the paper attributes to HARP. *)
let max_paths_per_link = 16

let path_pair_edges (g : Te_graph.t) =
  let n_links = Array.length g.Te_graph.link_caps in
  let per_link = Array.make n_links [] in
  Array.iteri
    (fun i p ->
      let l = g.Te_graph.incidence_link.(i) in
      if List.length per_link.(l) < max_paths_per_link then
        per_link.(l) <- p :: per_link.(l))
    g.Te_graph.incidence_path;
  let src = ref [] and dst = ref [] and feat = ref [] in
  Array.iteri
    (fun l paths ->
      let cap = g.Te_graph.link_caps.(l) /. 200.0 in
      List.iter
        (fun p ->
          List.iter
            (fun q ->
              if p <> q then begin
                src := p :: !src;
                dst := q :: !dst;
                feat := cap :: !feat
              end)
            paths)
        paths)
    per_link;
  { Te_graph.src = Array.of_list !src;
    dst = Array.of_list !dst;
    feat = Tensor.of_column (Array.of_list !feat) }

let forward t (g : Te_graph.t) =
  let base_ratios = Model.forward t.base g in
  if g.Te_graph.num_paths = 0 then base_ratios
  else begin
    let x = Layers.forward_linear t.lift base_ratios in
    let edges = path_pair_edges g in
    let x' = A.add x (Gat.forward t.path_attention ~x_src:x ~x_dst:x ~edges) in
    A.sigmoid (Layers.forward_linear t.readout x')
  end

let train ?(epochs = 20) ?(lr = 2e-3) t instances =
  let t0 = Unix.gettimeofday () in
  let samples =
    List.map
      (fun inst ->
        let label = Sate_te.Lp_solver.solve ~objective:Sate_te.Lp_solver.Min_mlu inst in
        ( Te_graph.of_instance inst,
          Sate_gnn.Loss.label_ratios_of_alloc inst label ))
      instances
  in
  let opt = Optimizer.adam ~lr (params t) in
  for _ = 1 to epochs do
    List.iter
      (fun (g, labels) ->
        if g.Te_graph.num_paths > 0 then begin
          let pred = forward t g in
          let loss = A.mean (A.square (A.sub pred (A.const labels))) in
          A.backward loss;
          Optimizer.step opt
        end)
      samples
  done;
  Unix.gettimeofday () -. t0

let predict t (inst : Instance.t) =
  let g = Te_graph.of_instance inst in
  let ratios = forward t g in
  let alloc = Allocation.zeros inst in
  let p = ref 0 in
  Array.iteri
    (fun f rates ->
      let demand = inst.Instance.commodities.(f).Instance.demand_mbps in
      Array.iteri
        (fun pi _ ->
          rates.(pi) <- demand *. Tensor.get ratios.A.value !p 0;
          incr p)
        rates)
    alloc;
  Allocation.trim inst alloc
