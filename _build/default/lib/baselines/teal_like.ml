open Sate_tensor
module A = Sate_nn.Autodiff
module Layers = Sate_nn.Layers
module Optimizer = Sate_nn.Optimizer
module Rng = Sate_util.Rng
module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation

type t = {
  num_sats : int;
  k : int;
  encoder : Layers.linear;
  allocator : Layers.linear;
  hidden : int;
}

let create ?(hidden = 8) ?(seed = 5) ~num_sats ~k () =
  let rng = Rng.create seed in
  let in_dim = num_sats * num_sats * (1 + k) in
  let out_dim = num_sats * num_sats * k in
  { num_sats;
    k;
    hidden;
    encoder = Layers.linear rng ~in_dim ~out_dim:hidden;
    allocator = Layers.linear rng ~in_dim:hidden ~out_dim }

let input_volume_bytes t = t.num_sats * t.num_sats * (1 + t.k) * 8

let params t = Layers.linear_params t.encoder @ Layers.linear_params t.allocator

let num_parameters t = Layers.num_parameters (params t)

let pair_index t src dst = (src * t.num_sats) + dst

(* Dense input: per ordered pair, demand followed by k path-length
   features.  This is the fixed-size structure that blocks pruning. *)
let dense_input t (inst : Instance.t) =
  let stride = 1 + t.k in
  let input = Tensor.create 1 (t.num_sats * t.num_sats * stride) in
  Array.iter
    (fun (c : Instance.commodity) ->
      let base = pair_index t c.Instance.src c.Instance.dst * stride in
      input.Tensor.data.(base) <- c.Instance.demand_mbps /. 100.0;
      Array.iteri
        (fun p path ->
          if p < t.k then
            input.Tensor.data.(base + 1 + p) <-
              float_of_int (Sate_paths.Path.hops path) /. 10.0)
        c.Instance.paths)
    inst.Instance.commodities;
  input

let dense_labels t (inst : Instance.t) alloc =
  let out = Tensor.create 1 (t.num_sats * t.num_sats * t.k) in
  Array.iteri
    (fun f (c : Instance.commodity) ->
      let base = pair_index t c.Instance.src c.Instance.dst * t.k in
      Array.iteri
        (fun p r ->
          if p < t.k && c.Instance.demand_mbps > 0.0 then
            out.Tensor.data.(base + p) <- r /. c.Instance.demand_mbps)
        alloc.(f))
    inst.Instance.commodities;
  out

let forward t input =
  let h = A.leaky_relu (Layers.forward_linear t.encoder input) in
  A.sigmoid (Layers.forward_linear t.allocator h)

let check_scale t (inst : Instance.t) =
  let n = inst.Instance.snapshot.Sate_topology.Snapshot.num_sats in
  if n <> t.num_sats then
    invalid_arg
      (Printf.sprintf
         "Teal_like: model trained for %d satellites applied to %d (fixed-size DNN \
          cannot transfer)"
         t.num_sats n)

let train ?(epochs = 20) ?(lr = 2e-3) t instances =
  let t0 = Unix.gettimeofday () in
  List.iter (check_scale t) instances;
  let samples =
    List.map
      (fun inst ->
        let label = Sate_te.Lp_solver.solve inst in
        (dense_input t inst, dense_labels t inst label))
      instances
  in
  let opt = Optimizer.adam ~lr (params t) in
  for _ = 1 to epochs do
    List.iter
      (fun (input, label) ->
        let pred = forward t (A.const input) in
        let loss = A.mean (A.square (A.sub pred (A.const label))) in
        A.backward loss;
        Optimizer.step opt)
      samples
  done;
  Unix.gettimeofday () -. t0

let predict t (inst : Instance.t) =
  check_scale t inst;
  let pred = forward t (A.const (dense_input t inst)) in
  let alloc = Allocation.zeros inst in
  Array.iteri
    (fun f (c : Instance.commodity) ->
      let base = pair_index t c.Instance.src c.Instance.dst * t.k in
      Array.iteri
        (fun p _ ->
          if p < t.k then
            alloc.(f).(p) <-
              c.Instance.demand_mbps *. pred.A.value.Tensor.data.(base + p))
        alloc.(f))
    inst.Instance.commodities;
  Allocation.trim inst alloc
