(** Progressive filling (water filling) over candidate paths.

    The shared engine behind {!Ecmp_wf} and {!Max_min}: all active
    commodities raise their rate at the same speed, splitting each
    increment equally over their active paths, until a resource
    saturates or the demand is met.  Freezing the finished ones and
    repeating yields the classic max-min-fair fixed point over the
    chosen path sets. *)

val solve :
  path_choice:(Sate_te.Instance.commodity -> int list) ->
  Sate_te.Instance.t ->
  Sate_te.Allocation.t
(** [solve ~path_choice inst] runs progressive filling where each
    commodity uses the candidate-path indices chosen by
    [path_choice].  The result is always feasible. *)

val min_hop_paths : Sate_te.Instance.commodity -> int list
(** Indices of the minimum-hop candidates (ECMP's equal-cost set). *)

val all_paths : Sate_te.Instance.commodity -> int list
(** All candidate-path indices (max-min filling over every path). *)
