lib/baselines/pop.ml: Array Float Fun List Sate_te Sate_topology Sate_util Unix
