lib/baselines/max_min.ml: Filling
