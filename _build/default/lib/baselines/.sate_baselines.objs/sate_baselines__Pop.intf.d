lib/baselines/pop.mli: Sate_te
