lib/baselines/ecmp_wf.mli: Sate_te
