lib/baselines/harp_like.mli: Sate_gnn Sate_te
