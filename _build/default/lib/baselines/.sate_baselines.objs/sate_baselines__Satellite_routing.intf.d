lib/baselines/satellite_routing.mli: Sate_te
