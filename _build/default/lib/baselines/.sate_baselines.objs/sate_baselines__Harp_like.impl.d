lib/baselines/harp_like.ml: Array List Sate_gnn Sate_nn Sate_te Sate_tensor Sate_util Tensor Unix
