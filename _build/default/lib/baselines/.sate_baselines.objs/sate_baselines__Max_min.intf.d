lib/baselines/max_min.mli: Sate_te
