lib/baselines/teal_like.mli: Sate_te
