lib/baselines/satellite_routing.ml: Array Sate_paths Sate_te Sate_util
