lib/baselines/filling.mli: Sate_te
