lib/baselines/filling.ml: Array Float Fun List Sate_paths Sate_te Sate_topology
