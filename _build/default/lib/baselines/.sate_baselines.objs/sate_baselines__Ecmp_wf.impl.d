lib/baselines/ecmp_wf.ml: Filling Sate_te
