lib/baselines/teal_like.ml: Array List Printf Sate_nn Sate_paths Sate_te Sate_tensor Sate_topology Sate_util Tensor Unix
