(** Distributed satellite routing baseline [56] (backpressure-style).

    Backpressure routing forwards traffic hop by hop from local queue
    gradients without a global view.  As a centralised-evaluation
    stand-in we emulate its defining weakness (the paper's reason it
    "performs the worst under heavy load": no holistic coordination):
    every commodity greedily sends its full demand down its best
    candidate path given only {e local} residual estimates, without
    coordinating with other commodities; the overload that a real
    backpressure network would express as queue growth and drops is
    realised by the feasibility trim.  Computation is distributed
    across routers, so the paper (and this harness) excludes it from
    latency comparisons. *)

val solve : ?seed:int -> Sate_te.Instance.t -> Sate_te.Allocation.t
