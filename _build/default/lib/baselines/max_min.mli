(** Max-min fair allocation (the fairness mechanism discussed in
    Appendix H.4 and Sec. 5.4 as a remedy for partially served
    flows).

    Progressive filling over {e all} candidate paths: every unfrozen
    commodity's rate rises at the same speed until a resource
    saturates, so no commodity can gain without taking from an equal
    or poorer one — the classical max-min fixed point restricted to
    the preconfigured path sets. *)

val solve : Sate_te.Instance.t -> Sate_te.Allocation.t
