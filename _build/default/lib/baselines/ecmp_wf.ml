module Instance = Sate_te.Instance

let solve (inst : Instance.t) =
  Filling.solve ~path_choice:Filling.min_hop_paths inst
