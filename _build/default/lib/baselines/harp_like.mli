(** HARP-like learning baseline [2].

    Architectural stand-in for HARP (SIGCOMM '24): a GNN TE model for
    changing topologies whose distinguishing component is an
    edge-path embedding transformer — dense attention among paths that
    share links.  That stage reproduces the two properties the paper
    leans on:

    - per-inference cost grows with network size (the pairwise
      path-interaction count grows with path density per link),
      giving HARP its ~4x latency gap versus SaTE (Fig. 8a);
    - the model is trained for MLU minimisation (its native
      objective, Fig. 15a) and is "not inherently adaptable to
      throughput maximisation" — throughput readings come from the
      same MLU-trained model. *)

type t

val create : ?hyper:Sate_gnn.Model.hyper -> ?seed:int -> unit -> t

val num_parameters : t -> int

val train :
  ?epochs:int -> ?lr:float -> t -> Sate_te.Instance.t list -> float
(** Supervised training against MLU-optimal LP labels; returns
    wall-clock seconds. *)

val predict : t -> Sate_te.Instance.t -> Sate_te.Allocation.t
(** Trimmed allocation (generalises across topologies like any GNN,
    but allocates for MLU, not throughput). *)
