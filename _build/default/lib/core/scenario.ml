module Constellation = Sate_orbit.Constellation
module Builder = Sate_topology.Builder
module Generator = Sate_traffic.Generator
module Demand = Sate_traffic.Demand
module Path_db = Sate_paths.Path_db
module Instance = Sate_te.Instance

type config = {
  scale : int;
  cross_shell : Builder.cross_shell_mode;
  lambda : float;
  k : int;
  seed : int;
  warmup_s : float;
}

let default_config =
  { scale = 66;
    cross_shell = Builder.Lasers;
    lambda = 8.0;
    k = 4;
    seed = 7;
    warmup_s = 60.0 }

type t = {
  config : config;
  constellation : Constellation.t;
  builder : Builder.t;
  generator : Generator.t;
  mutable db : Path_db.t option;
  mutable last_recompute : int;
}

let create ?(config = default_config) () =
  let constellation = Constellation.of_scale config.scale in
  let builder =
    Builder.create
      ~config:{ Builder.default_config with Builder.cross_shell = config.cross_shell }
      constellation
  in
  let generator =
    Generator.create
      ~config:{ Generator.default_config with Generator.seed = config.seed }
      ~lambda:config.lambda ()
  in
  Generator.advance generator ~to_s:config.warmup_s;
  { config; constellation; builder; generator; db = None; last_recompute = 0 }

let config t = t.config

let constellation t = t.constellation

let builder t = t.builder

let demand_at t ~time_s =
  let snap = Builder.snapshot t.builder ~time_s in
  Generator.advance t.generator ~to_s:(time_s +. t.config.warmup_s);
  let demand, _, _ = Generator.demand_at t.generator snap in
  demand

let instance_at t ~time_s =
  let snap = Builder.snapshot t.builder ~time_s in
  Generator.advance t.generator ~to_s:(time_s +. t.config.warmup_s);
  let demand, up, down = Generator.demand_at t.generator snap in
  let pairs =
    Array.to_list
      (Array.map (fun (e : Demand.entry) -> (e.Demand.src, e.Demand.dst)) demand.Demand.entries)
  in
  let db =
    match t.db with
    | None ->
        t.last_recompute <- List.length pairs;
        Path_db.compute t.constellation snap ~pairs ~k:t.config.k
    | Some db ->
        let db, recomputed = Path_db.update db snap in
        t.last_recompute <- recomputed;
        Path_db.add_pairs db snap pairs
  in
  t.db <- Some db;
  Instance.make ~up_caps:up ~down_caps:down snap demand db

let last_path_recompute_count t = t.last_recompute

let path_db t = t.db
