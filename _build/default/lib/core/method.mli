(** Uniform dispatcher over all TE computation methods under
    evaluation (Sec. 4 "Objectives and Baselines"). *)

type t =
  | Lp  (** Exact LP — the Gurobi baseline / offline optimum. *)
  | Lp_utility
      (** Exact LP with the log-utility objective (Eq. 3): soft
          fairness instead of raw throughput. *)
  | Pop of int  (** POP with k partitions. *)
  | Ecmp_wf
  | Max_min  (** Max-min fair progressive filling (Appendix H.4). *)
  | Satellite_routing
  | Sate of Sate_gnn.Model.t
  | Sate_mlu of Sate_gnn.Model.t
      (** SaTE trained for the MLU objective (Appendix H.2). *)
  | Teal of Sate_baselines.Teal_like.t
  | Harp of Sate_baselines.Harp_like.t

val name : t -> string

val solve : t -> Sate_te.Instance.t -> Sate_te.Allocation.t
(** Always returns a feasible allocation. *)

val solve_timed : t -> Sate_te.Instance.t -> Sate_te.Allocation.t * float
(** Allocation plus computational latency in milliseconds.  For POP
    the latency is that of the slowest parallel partition; for the
    distributed [Satellite_routing] the paper excludes latency
    comparisons, so 0 is reported. *)

val is_centralized : t -> bool
(** Whether the method's latency is meaningful (false only for
    [Satellite_routing]). *)
