module Allocation = Sate_te.Allocation
module Lp_solver = Sate_te.Lp_solver

let satisfied m instances =
  match instances with
  | [] -> 0.0
  | _ ->
      let total =
        List.fold_left
          (fun acc inst ->
            acc +. Allocation.satisfied_ratio inst (Method.solve m inst))
          0.0 instances
      in
      total /. float_of_int (List.length instances)

let mlu m instances =
  match instances with
  | [] -> 0.0
  | _ ->
      let total =
        List.fold_left
          (fun acc inst ->
            let value =
              match m with
              | Method.Lp ->
                  snd (Lp_solver.solve_with_value ~objective:Lp_solver.Min_mlu inst)
              | Method.Sate_mlu model ->
                  (* MLU is only comparable between allocations that
                     carry the same traffic: take the raw (untrimmed)
                     split and scale it to route all demand, exactly
                     like the MLU LP's equality constraints. *)
                  let raw = Sate_gnn.Model.predict ~trim:false model inst in
                  Allocation.mlu inst (Allocation.scale_to_full_demand inst raw)
              | Method.Lp_utility | Method.Pop _ | Method.Ecmp_wf | Method.Max_min
              | Method.Satellite_routing | Method.Sate _ | Method.Teal _
              | Method.Harp _ ->
                  Allocation.mlu inst
                    (Allocation.scale_to_full_demand inst (Method.solve m inst))
            in
            acc +. value)
          0.0 instances
      in
      total /. float_of_int (List.length instances)

let per_flow_ratios m inst =
  Allocation.per_commodity_ratio inst (Method.solve m inst)
