lib/core/control_plane.mli: Sate_geo Sate_te Sate_topology
