lib/core/offline.mli: Method Sate_te
