lib/core/method.mli: Sate_baselines Sate_gnn Sate_te
