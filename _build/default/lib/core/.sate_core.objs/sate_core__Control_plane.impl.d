lib/core/control_plane.ml: Array Float List Sate_geo Sate_paths Sate_te Sate_topology Sate_util
