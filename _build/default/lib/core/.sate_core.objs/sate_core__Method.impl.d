lib/core/method.ml: Printf Sate_baselines Sate_gnn Sate_te Unix
