lib/core/offline.ml: List Method Sate_gnn Sate_te
