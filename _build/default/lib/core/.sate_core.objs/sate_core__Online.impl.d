lib/core/online.ml: Array Float Hashtbl List Method Sate_paths Sate_te Scenario
