lib/core/online.ml: Array Float Hashtbl List Method Printf Sate_paths Sate_te Scenario
