lib/core/online.mli: Method Sate_te Scenario
