lib/core/scenario.mli: Sate_orbit Sate_paths Sate_te Sate_topology Sate_traffic
