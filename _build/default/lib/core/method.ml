module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Lp_solver = Sate_te.Lp_solver

type t =
  | Lp
  | Lp_utility
  | Pop of int
  | Ecmp_wf
  | Max_min
  | Satellite_routing
  | Sate of Sate_gnn.Model.t
  | Sate_mlu of Sate_gnn.Model.t
  | Teal of Sate_baselines.Teal_like.t
  | Harp of Sate_baselines.Harp_like.t

let name = function
  | Lp -> "lp-optimal"
  | Lp_utility -> "lp-log-utility"
  | Pop k -> Printf.sprintf "pop-%d" k
  | Ecmp_wf -> "ecmp-wf"
  | Max_min -> "max-min-fair"
  | Satellite_routing -> "satellite-routing"
  | Sate _ -> "sate"
  | Sate_mlu _ -> "sate-mlu"
  | Teal _ -> "teal-like"
  | Harp _ -> "harp-like"

let is_centralized = function Satellite_routing -> false | _ -> true

let solve_timed m inst =
  match m with
  | Pop k -> Sate_baselines.Pop.solve_timed ~k inst
  | Satellite_routing -> (Sate_baselines.Satellite_routing.solve inst, 0.0)
  | Lp | Lp_utility | Ecmp_wf | Max_min | Sate _ | Sate_mlu _ | Teal _ | Harp _ ->
      let t0 = Unix.gettimeofday () in
      let alloc =
        match m with
        | Lp -> Lp_solver.solve inst
        | Lp_utility -> Lp_solver.solve ~objective:Lp_solver.Max_log_utility inst
        | Ecmp_wf -> Sate_baselines.Ecmp_wf.solve inst
        | Max_min -> Sate_baselines.Max_min.solve inst
        | Sate model | Sate_mlu model -> Sate_gnn.Model.predict model inst
        | Teal model -> Sate_baselines.Teal_like.predict model inst
        | Harp model -> Sate_baselines.Harp_like.predict model inst
        | Pop _ | Satellite_routing -> assert false
      in
      (alloc, (Unix.gettimeofday () -. t0) *. 1000.0)

let solve m inst = fst (solve_timed m inst)
