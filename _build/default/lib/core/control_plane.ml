module Geo = Sate_geo.Geo
module Snapshot = Sate_topology.Snapshot
module Link = Sate_topology.Link
module Pqueue = Sate_util.Pqueue
module Instance = Sate_te.Instance

let houston = Geo.of_lat_lon ~lat_deg:29.76 ~lon_deg:(-95.37) ~alt_km:0.0

let rule_distribution_delays_ms ?(center = houston) ?(min_elevation_deg = 25.0)
    (snap : Snapshot.t) =
  let n = Snapshot.num_nodes snap in
  let dist = Array.make n Float.infinity in
  let q = Pqueue.create n in
  (* Multi-source: every satellite in view of the centre is seeded
     with its direct up-link delay. *)
  for sat = 0 to snap.Snapshot.num_sats - 1 do
    let p = snap.Snapshot.sat_positions.(sat) in
    if Geo.elevation_angle_deg ~ground:center ~sat:p >= min_elevation_deg then begin
      let d = Geo.propagation_delay_ms center p in
      dist.(sat) <- d;
      Pqueue.insert q sat d
    end
  done;
  let continue = ref true in
  while !continue do
    match Pqueue.pop_min q with
    | None -> continue := false
    | Some (u, du) ->
        List.iter
          (fun (v, li) ->
            let l = snap.Snapshot.links.(li) in
            let alt = du +. Link.delay_ms l in
            if alt < dist.(v) then begin
              dist.(v) <- alt;
              Pqueue.insert_or_decrease q v alt
            end)
          (Snapshot.neighbors snap u)
  done;
  Array.sub dist 0 snap.Snapshot.num_sats

let rule_count_estimate (inst : Instance.t) =
  Array.fold_left
    (fun acc (c : Instance.commodity) ->
      Array.fold_left
        (fun acc p -> acc + Sate_paths.Path.hops p + 1)
        acc c.Instance.paths)
    0 inst.Instance.commodities
