(** End-to-end evaluation scenario: constellation + topology builder +
    traffic generator + incrementally maintained path database.

    A scenario is the data side of the TE workflow (Fig. 3): asking
    for the instance at time t advances the satellites, expires and
    admits flows, attaches endpoints, refreshes only the paths that
    topology changes invalidated (Appendix C), and returns a ready
    {!Sate_te.Instance.t}. *)

type config = {
  scale : int;  (** Satellite count (see {!Sate_orbit.Constellation.of_scale}). *)
  cross_shell : Sate_topology.Builder.cross_shell_mode;
  lambda : float;  (** Flow arrivals per second. *)
  k : int;  (** Candidate paths per pair. *)
  seed : int;
  warmup_s : float;  (** Traffic warm-up before t = 0. *)
}

val default_config : config
(** 66 satellites, lasers, lambda 8, k 4, warm-up 60 s. *)

type t

val create : ?config:config -> unit -> t

val config : t -> config

val constellation : t -> Sate_orbit.Constellation.t

val builder : t -> Sate_topology.Builder.t

val instance_at : t -> time_s:float -> Sate_te.Instance.t
(** TE inputs at simulation time [time_s] (non-decreasing across
    calls).  Uplink/downlink capacities come from the generator's
    per-connection model. *)

val demand_at : t -> time_s:float -> Sate_traffic.Demand.t
(** Just the traffic matrix (advances time like {!instance_at}). *)

val last_path_recompute_count : t -> int
(** Pairs recomputed by the most recent incremental path update. *)

val path_db : t -> Sate_paths.Path_db.t option
(** Current path database (None before the first instance). *)
