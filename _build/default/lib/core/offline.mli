(** Offline (delay-free) evaluation: allocation quality only
    (Appendix H.1, H.2). *)

val satisfied : Method.t -> Sate_te.Instance.t list -> float
(** Mean satisfied-demand ratio across instances, computing each
    allocation instantaneously. *)

val mlu : Method.t -> Sate_te.Instance.t list -> float
(** Mean maximum link utilisation with {e all} demand routed (each
    method's split is rescaled to carry every commodity's full demand,
    matching the MLU LP's equality constraints; utilisation may exceed
    1).  For the LP method the exact MLU optimum is solved. *)

val per_flow_ratios : Method.t -> Sate_te.Instance.t -> float array
(** Flow-level satisfied demand for one instance (Fig. 16a). *)
