(** Control-plane propagation analysis (Appendix D, Fig. 13).

    Traffic rules travel from the control centre to every satellite:
    directly to satellites in view of the centre, and over ISL hops
    for the rest.  The per-satellite delay is the speed-of-light time
    along the shortest (delay-weighted) route. *)

val houston : Sate_geo.Geo.vec3
(** Default control-centre location used by the paper's example. *)

val rule_distribution_delays_ms :
  ?center:Sate_geo.Geo.vec3 ->
  ?min_elevation_deg:float ->
  Sate_topology.Snapshot.t ->
  float array
(** One-way delay to every satellite (ms); [infinity] for satellites
    unreachable from the centre in this snapshot.  Satellites above
    [min_elevation_deg] (default 25) receive rules directly. *)

val rule_count_estimate :
  Sate_te.Instance.t -> int
(** Total flow-table rules the allocation implies: m active pairs x k
    paths x average path length (Appendix D overhead estimate). *)
