open Sate_tensor
module A = Sate_nn.Autodiff
module Rng = Sate_util.Rng
module Gat = Sate_gnn.Gat
module Te_graph = Sate_gnn.Te_graph

type result = {
  name : string;
  max_rel_err : float;
  worst_index : int;
  checked : int;
  passed : bool;
}

let default_tol = 1e-4

let result_to_string r =
  Printf.sprintf "%s: %s (max rel err %.3g at %d over %d coords)" r.name
    (if r.passed then "ok" else "FAIL")
    r.max_rel_err r.worst_index r.checked

let failures = List.filter (fun r -> not r.passed)

let check_inplace ?(eps = 1e-5) ?(tol = default_tol) ~name ~param ~forward () =
  let rows, cols = A.shape param in
  (* Zero only the checked leaf: [forward] builds a fresh graph, so
     stale gradients on other leaves never reach this one. *)
  param.A.grad <- Tensor.create rows cols;
  A.backward (forward ());
  let analytic = Tensor.copy param.A.grad in
  let data = param.A.value.Tensor.data in
  let max_rel = ref 0.0 and worst = ref (-1) in
  Array.iteri
    (fun i orig ->
      data.(i) <- orig +. eps;
      let up = A.scalar_value (forward ()) in
      data.(i) <- orig -. eps;
      let down = A.scalar_value (forward ()) in
      data.(i) <- orig;
      let numeric = (up -. down) /. (2.0 *. eps) in
      let a = analytic.Tensor.data.(i) in
      let rel =
        Float.abs (a -. numeric)
        /. Float.max 1.0 (Float.max (Float.abs a) (Float.abs numeric))
      in
      if rel > !max_rel then begin
        max_rel := rel;
        worst := i
      end)
    (Array.copy data);
  { name;
    max_rel_err = !max_rel;
    worst_index = !worst;
    checked = Array.length data;
    passed = !max_rel <= tol }

let check ?eps ?tol ~name ~build x0 =
  let leaf = A.leaf (Tensor.copy x0) in
  check_inplace ?eps ?tol ~name ~param:leaf ~forward:(fun () -> build leaf) ()

let rand rng rows cols =
  Tensor.init rows cols (fun _ _ -> Rng.uniform rng (-1.0) 1.0)

(* Magnitude in [0.2, 1.0) with random sign: keeps every coordinate at
   least 0.05 away from the kinks used below (0 for relu/leaky_relu,
   0.15 for clamp_max), where central differences are invalid. *)
let rand_away rng rows cols =
  Tensor.init rows cols (fun _ _ ->
      let v = Rng.uniform rng 0.2 1.0 in
      if Rng.bool rng then v else -.v)

let all_ops ?(seed = 7) ?eps ?tol () =
  let rng = Rng.create seed in
  let w32 = rand rng 3 2 in
  let w23 = rand rng 2 3 in
  let m43 = rand rng 4 3 in
  let v41 = rand rng 4 1 in
  let v14 = rand rng 1 4 in
  let v13 = rand rng 1 3 in
  let c51 = rand rng 5 1 in
  let sq x = A.sum (A.square x) in
  let cases =
    [ ("add", (fun x -> sq (A.add x (A.const w32))), rand rng 3 2);
      ("sub", (fun x -> sq (A.sub x (A.const w32))), rand rng 3 2);
      ("mul", (fun x -> sq (A.mul x (A.const w32))), rand rng 3 2);
      ("scale", (fun x -> sq (A.scale 1.7 x)), rand rng 3 2);
      ("matmul-left", (fun x -> sq (A.matmul x (A.const w23))), rand rng 3 2);
      ("matmul-right", (fun x -> sq (A.matmul (A.const w32) x)), rand rng 2 3);
      ("square", (fun x -> A.sum (A.square x)), rand rng 3 3);
      ("leaky_relu", (fun x -> sq (A.leaky_relu x)), rand_away rng 3 3);
      ("relu", (fun x -> sq (A.relu x)), rand_away rng 3 3);
      ("sigmoid", (fun x -> sq (A.sigmoid x)), rand rng 2 3);
      ("exp", (fun x -> sq (A.exp x)), rand rng 2 3);
      ("clamp_max", (fun x -> sq (A.clamp_max 0.15 x)), rand_away rng 3 3);
      ( "gather_rows",
        (fun x -> sq (A.gather_rows x [| 0; 2; 0; 1 |])),
        rand rng 3 2 );
      ( "scatter_add_rows",
        (fun x -> sq (A.scatter_add_rows x [| 1; 0; 1; 0 |] ~rows:2)),
        rand rng 4 2 );
      ( "concat_cols",
        (fun x -> sq (A.concat_cols [ x; A.const w32 ])),
        rand rng 3 2 );
      ( "add_rowvec-matrix",
        (fun x -> sq (A.add_rowvec x (A.const v14))),
        rand rng 3 4 );
      ( "add_rowvec-vector",
        (fun v -> sq (A.add_rowvec (A.const m43) v)),
        Tensor.copy v13 );
      ( "col_mul-matrix",
        (fun x -> sq (A.col_mul x (A.const v41))),
        rand rng 4 3 );
      ( "col_mul-vector",
        (fun v -> sq (A.col_mul (A.const m43) v)),
        Tensor.copy v41 );
      ("row_sums", (fun x -> sq (A.row_sums x)), rand rng 3 4);
      ("sum", (fun x -> A.square (A.sum x)), rand rng 3 3);
      ("mean", (fun x -> A.mean (A.square x)), rand rng 3 3);
      ( "segment_softmax",
        (fun x ->
          A.sum (A.mul (A.segment_softmax x [| 0; 0; 1; 1; 1 |]) (A.const c51))),
        rand rng 5 1 );
      ( "div_scalar-numerator",
        (fun x -> sq (A.div_scalar x (A.scalar 2.5))),
        rand rng 2 3 );
      ( "div_scalar-denominator",
        (fun s -> A.sum (A.square (A.div_scalar (A.const m43) s))),
        Tensor.of_array ~rows:1 ~cols:1 [| 1.3 |] ) ]
  in
  List.map (fun (name, build, x0) -> check ?eps ?tol ~name ~build x0) cases

let gat_layer ?(seed = 11) ?eps ?(tol = 1e-3) ?(attention = true) () =
  let rng = Rng.create seed in
  let dim = 4 and heads = 2 in
  let gat = Gat.create ~attention rng ~dim ~heads in
  let n_src = 5 and n_dst = 4 in
  let src = [| 0; 1; 2; 3; 4; 1 |] and dst = [| 1; 0; 3; 2; 1; 3 |] in
  let edges = { Te_graph.src; dst; feat = rand rng (Array.length src) 1 } in
  let x_src = A.leaf (rand rng n_src dim) in
  let x_dst = A.leaf (rand rng n_dst dim) in
  let forward () = A.sum (A.square (Gat.forward gat ~x_src ~x_dst ~edges)) in
  let targets =
    ("gat:x_src", x_src) :: ("gat:x_dst", x_dst)
    :: List.mapi (fun i p -> (Printf.sprintf "gat:param%d" i, p)) (Gat.params gat)
  in
  List.map
    (fun (name, param) -> check_inplace ?eps ~tol ~name ~param ~forward ())
    targets
