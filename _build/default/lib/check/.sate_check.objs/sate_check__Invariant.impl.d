lib/check/invariant.ml: List Sate_te String
