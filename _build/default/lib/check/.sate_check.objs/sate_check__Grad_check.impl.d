lib/check/grad_check.ml: Array Float List Printf Sate_gnn Sate_nn Sate_tensor Sate_util Tensor
