lib/check/lp_check.ml: Sate_lp Sate_te
