lib/check/lp_check.mli: Sate_lp Sate_te
