lib/check/grad_check.mli: Sate_nn Sate_tensor Tensor
