lib/check/invariant.mli: Sate_te
