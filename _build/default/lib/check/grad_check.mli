(** Finite-difference verification of {!Sate_nn.Autodiff} backward
    passes.

    Every op's analytic gradient is compared coordinate-by-coordinate
    against central differences [(f(x+h) - f(x-h)) / 2h] of the same
    forward computation.  This is the regression oracle for any future
    change to the autodiff tape, a tensor kernel, or the GAT layer: a
    wrong adjoint shows up as a relative error orders of magnitude
    above {!default_tol}.

    All randomness is drawn from {!Sate_util.Rng} with explicit seeds,
    so a failing check is exactly reproducible. *)

open Sate_tensor
module A = Sate_nn.Autodiff

type result = {
  name : string;
  max_rel_err : float;  (** Worst relative error over all coordinates. *)
  worst_index : int;  (** Flat index of the worst coordinate (-1 if none). *)
  checked : int;  (** Number of coordinates compared. *)
  passed : bool;  (** [max_rel_err <= tol]. *)
}

val default_tol : float
(** 1e-4: central differences with [eps = 1e-5] put truncation and
    round-off error well below this for every smooth op. *)

val result_to_string : result -> string

val failures : result list -> result list
(** The subset that did not pass. *)

val check_inplace :
  ?eps:float ->
  ?tol:float ->
  name:string ->
  param:A.t ->
  forward:(unit -> A.t) ->
  unit ->
  result
(** [check_inplace ~param ~forward ()] verifies the gradient of the
    scalar [forward ()] with respect to the leaf [param], whose value
    tensor is perturbed in place (and restored).  [forward] must
    rebuild the graph from the current leaf values on every call and
    be deterministic.  This form supports leaves buried inside a layer
    (e.g. one GAT head weight). *)

val check :
  ?eps:float ->
  ?tol:float ->
  name:string ->
  build:(A.t -> A.t) ->
  Tensor.t ->
  result
(** [check ~build x0] makes a fresh leaf from [x0] and verifies the
    gradient of the scalar [build leaf] with respect to it. *)

val all_ops : ?seed:int -> ?eps:float -> ?tol:float -> unit -> result list
(** One check per op exported by {!Sate_nn.Autodiff} (both operands
    where an op has two differentiable inputs).  Inputs for ops with
    kinks (relu, leaky_relu, clamp_max) are sampled away from the
    kink so the finite difference is valid. *)

val gat_layer :
  ?seed:int ->
  ?eps:float ->
  ?tol:float ->
  ?attention:bool ->
  unit ->
  result list
(** End-to-end checks of the {!Sate_gnn.Gat} block: gradient of
    [sum (forward ^ 2)] with respect to the source/destination inputs
    and every parameter of every head.  Default tolerance is looser
    (1e-3) because the composite passes through several LeakyReLU
    kinks. *)
