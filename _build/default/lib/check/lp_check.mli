(** LP result certification for TE instances.

    The raw certificate arithmetic lives in {!Sate_lp.Certificate}
    (it must sit below [sate.te] so the solver can self-verify); this
    module is the checking façade: certify arbitrary simplex outcomes
    and run the TE LP solver in verified mode, returning the failure
    as data instead of an exception. *)

module Certificate = Sate_lp.Certificate

val check_outcome :
  ?eps:float ->
  c:float array ->
  constraints:Sate_lp.Simplex.constr list ->
  Sate_lp.Simplex.outcome ->
  Certificate.report option
(** Alias of {!Sate_lp.Certificate.check}. *)

val certified :
  ?eps:float ->
  ?maximize:bool ->
  c:float array ->
  constraints:Sate_lp.Simplex.constr list ->
  unit ->
  (Sate_lp.Simplex.outcome, string) result
(** Solve with {!Sate_lp.Simplex.solve} and certify any [Optimal]
    outcome in one step.  [Error] carries the human-readable
    certificate failure; non-[Optimal] outcomes pass through as
    [Ok]. *)

val verify_instance :
  ?objective:Sate_te.Lp_solver.objective ->
  Sate_te.Instance.t ->
  (float, string) result
(** Run {!Sate_te.Lp_solver.solve_with_value} with [~verify:true] on
    the instance; [Ok objective_value] when every certificate and
    cross-check holds, [Error msg] otherwise. *)
