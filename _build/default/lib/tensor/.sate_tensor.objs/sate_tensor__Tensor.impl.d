lib/tensor/tensor.ml: Array Float Format List Sate_util
