lib/tensor/tensor.mli: Format Sate_util
