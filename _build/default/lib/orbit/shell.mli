(** One orbital shell of a Walker-delta constellation.

    A shell is a set of circular orbits sharing altitude and
    inclination: [planes] orbital planes spread evenly in RAAN, each
    carrying [sats_per_plane] equally spaced satellites.  This matches
    the FCC filing structure the paper replicates (Table 4). *)

type t = {
  name : string;  (** Human-readable label, e.g. ["starlink-shell-1"]. *)
  altitude_km : float;  (** Height above the Earth surface. *)
  inclination_deg : float;  (** Orbital inclination. *)
  planes : int;  (** Number of orbital planes. *)
  sats_per_plane : int;  (** Satellites per plane. *)
  phasing : int;
      (** Walker phasing factor F: the along-track offset between
          adjacent planes is [2 pi F / (planes * sats_per_plane)]. *)
}

val make :
  ?name:string ->
  ?phasing:int ->
  altitude_km:float ->
  inclination_deg:float ->
  planes:int ->
  sats_per_plane:int ->
  unit ->
  t
(** Smart constructor; validates positive counts and altitude. *)

val size : t -> int
(** Number of satellites in the shell. *)

val semi_major_axis_km : t -> float
(** Orbit radius from the Earth's centre. *)

val mean_motion_rad_s : t -> float
(** Angular rate [sqrt (mu / a^3)]. *)

val period_s : t -> float
(** Orbital period in seconds. *)

val position :
  t -> plane:int -> slot:int -> time_s:float -> Sate_geo.Geo.vec3
(** ECEF position of the satellite at [plane, slot] at simulation time
    [time_s] seconds.  Accounts for Earth rotation so ground-relative
    geometry (elevation angles) is correct. *)

val j2 : float
(** Earth's dominant oblateness coefficient, 1.08263e-3. *)

val raan_drift_rad_s : t -> float
(** Secular nodal-regression rate from J2: negative (westward) for
    prograde shells, positive for the retrograde-leaning polar
    shell. *)

val position_j2 :
  t -> plane:int -> slot:int -> time_s:float -> Sate_geo.Geo.vec3
(** Like {!position} but with the dominant J2 secular effects: RAAN
    drift ({!raan_drift_rad_s}) and the corrected draconitic angular
    rate.  Inter-shell relative geometry drifts realistically over
    hours; over the sub-minute horizons of most TE experiments the
    Keplerian {!position} is indistinguishable and faster. *)
