module Geo = Sate_geo.Geo

type t = {
  name : string;
  altitude_km : float;
  inclination_deg : float;
  planes : int;
  sats_per_plane : int;
  phasing : int;
}

(* Sidereal-day Earth rotation rate, rad/s. *)
let earth_rotation_rad_s = 7.2921159e-5

let make ?(name = "shell") ?(phasing = 1) ~altitude_km ~inclination_deg ~planes
    ~sats_per_plane () =
  if altitude_km <= 0.0 then invalid_arg "Shell.make: altitude must be positive";
  if planes <= 0 || sats_per_plane <= 0 then
    invalid_arg "Shell.make: counts must be positive";
  { name; altitude_km; inclination_deg; planes; sats_per_plane; phasing }

let size t = t.planes * t.sats_per_plane

let semi_major_axis_km t = Geo.earth_radius_km +. t.altitude_km

let mean_motion_rad_s t =
  let a = semi_major_axis_km t in
  sqrt (Geo.mu_earth /. (a *. a *. a))

let period_s t = 2.0 *. Float.pi /. mean_motion_rad_s t

let j2 = 1.08263e-3

let raan_drift_rad_s t =
  let a = semi_major_axis_km t in
  let ratio = Geo.earth_radius_km /. a in
  let inc = t.inclination_deg *. Float.pi /. 180.0 in
  -1.5 *. j2 *. mean_motion_rad_s t *. ratio *. ratio *. cos inc

(* Shared position kernel: argument-of-latitude rate and RAAN rate are
   the only differences between the Keplerian and J2 models. *)
let position_with_rates t ~plane ~slot ~time_s ~u_rate ~raan_rate =
  assert (plane >= 0 && plane < t.planes);
  assert (slot >= 0 && slot < t.sats_per_plane);
  let a = semi_major_axis_km t in
  let inc = t.inclination_deg *. Float.pi /. 180.0 in
  let raan =
    (2.0 *. Float.pi *. float_of_int plane /. float_of_int t.planes)
    +. (raan_rate *. time_s)
  in
  let u0 =
    (2.0 *. Float.pi *. float_of_int slot /. float_of_int t.sats_per_plane)
    +. 2.0 *. Float.pi *. float_of_int (t.phasing * plane)
       /. float_of_int (t.planes * t.sats_per_plane)
  in
  let u = u0 +. (u_rate *. time_s) in
  let cos_u = cos u and sin_u = sin u in
  let cos_i = cos inc and sin_i = sin inc in
  let cos_o = cos raan and sin_o = sin raan in
  let xi = a *. cos_u and yi = a *. sin_u in
  let x_eci = (cos_o *. xi) -. (sin_o *. cos_i *. yi) in
  let y_eci = (sin_o *. xi) +. (cos_o *. cos_i *. yi) in
  let z_eci = sin_i *. yi in
  let theta = earth_rotation_rad_s *. time_s in
  let cos_t = cos theta and sin_t = sin theta in
  { Geo.x = (cos_t *. x_eci) +. (sin_t *. y_eci);
    y = (-.sin_t *. x_eci) +. (cos_t *. y_eci);
    z = z_eci }

let position_j2 t ~plane ~slot ~time_s =
  let a = semi_major_axis_km t in
  let ratio = Geo.earth_radius_km /. a in
  let inc = t.inclination_deg *. Float.pi /. 180.0 in
  let n = mean_motion_rad_s t in
  (* Draconitic rate: combined secular drift of argument of perigee
     and mean anomaly for a circular orbit. *)
  let u_rate =
    n *. (1.0 +. (1.5 *. j2 *. ratio *. ratio *. (1.0 -. (1.5 *. sin inc *. sin inc))))
  in
  position_with_rates t ~plane ~slot ~time_s ~u_rate
    ~raan_rate:(raan_drift_rad_s t)

let position t ~plane ~slot ~time_s =
  position_with_rates t ~plane ~slot ~time_s ~u_rate:(mean_motion_rad_s t)
    ~raan_rate:0.0
