(** Multi-shell constellations and satellite indexing.

    Satellites are numbered globally: shell by shell, plane-major
    within a shell.  The grid coordinate [(shell, plane, slot)] of a
    satellite is the key input to the fast path algorithms of
    Appendix C. *)

type coord = { shell : int; plane : int; slot : int }
(** Grid coordinate of a satellite. *)

type t

val make : name:string -> Shell.t list -> t
(** Build a constellation from its shells (at least one). *)

val name : t -> string

val shells : t -> Shell.t array

val size : t -> int
(** Total number of satellites. *)

val coord_of_id : t -> int -> coord
(** Grid coordinate of a global satellite id.  Raises
    [Invalid_argument] when out of range. *)

val id_of_coord : t -> coord -> int
(** Inverse of {!coord_of_id}. *)

val position : t -> time_s:float -> int -> Sate_geo.Geo.vec3
(** ECEF position of one satellite at a given time. *)

val positions : t -> time_s:float -> Sate_geo.Geo.vec3 array
(** Positions of all satellites (indexed by global id). *)

(** {1 Presets used by the paper} *)

val starlink_phase1 : t
(** The four completed Starlink shells (Table 4): 4,236 satellites. *)

val iridium : t
(** Iridium: 66 satellites, 6 planes x 11, 781 km, 86.4 degrees. *)

val mid_size : plane_divisor:int -> t
(** Starlink shells 1-2 with the number of planes divided by
    [plane_divisor]: divisor 8 gives 396 satellites (Mid-Size 1),
    divisor 2 gives 1,584 (Mid-Size 2), matching Section 4. *)

val grid : ?altitude_km:float -> ?inclination_deg:float -> planes:int -> sats_per_plane:int -> unit -> t
(** Single-shell test constellation of arbitrary size, e.g. the 176-
    and 528-satellite scales used for the Teal comparison. *)

val of_scale : int -> t
(** Convenience lookup by the satellite counts quoted in the paper:
    66, 176, 396, 528, 1584, 4236.  Raises [Invalid_argument] for
    other values. *)
