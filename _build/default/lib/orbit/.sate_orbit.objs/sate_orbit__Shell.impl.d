lib/orbit/shell.ml: Float Sate_geo
