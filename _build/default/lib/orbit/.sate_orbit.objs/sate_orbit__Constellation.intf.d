lib/orbit/constellation.mli: Sate_geo Shell
