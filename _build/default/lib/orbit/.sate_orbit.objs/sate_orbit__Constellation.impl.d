lib/orbit/constellation.ml: Array Printf Sate_geo Shell
