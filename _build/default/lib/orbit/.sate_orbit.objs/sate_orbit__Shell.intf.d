lib/orbit/shell.mli: Sate_geo
