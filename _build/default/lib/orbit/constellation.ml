module Geo = Sate_geo.Geo

type coord = { shell : int; plane : int; slot : int }

type t = {
  name : string;
  shells : Shell.t array;
  offsets : int array; (* offsets.(s) = first global id of shell s *)
  total : int;
}

let make ~name shells =
  if shells = [] then invalid_arg "Constellation.make: no shells";
  let shells = Array.of_list shells in
  let n = Array.length shells in
  let offsets = Array.make n 0 in
  let total = ref 0 in
  for s = 0 to n - 1 do
    offsets.(s) <- !total;
    total := !total + Shell.size shells.(s)
  done;
  { name; shells; offsets; total = !total }

let name t = t.name

let shells t = t.shells

let size t = t.total

let coord_of_id t id =
  if id < 0 || id >= t.total then invalid_arg "Constellation.coord_of_id";
  let rec find s =
    if s + 1 < Array.length t.offsets && t.offsets.(s + 1) <= id then find (s + 1)
    else s
  in
  let s = find 0 in
  let local = id - t.offsets.(s) in
  let per = t.shells.(s).Shell.sats_per_plane in
  { shell = s; plane = local / per; slot = local mod per }

let id_of_coord t { shell; plane; slot } =
  if shell < 0 || shell >= Array.length t.shells then
    invalid_arg "Constellation.id_of_coord: bad shell";
  let sh = t.shells.(shell) in
  if plane < 0 || plane >= sh.Shell.planes || slot < 0 || slot >= sh.Shell.sats_per_plane
  then invalid_arg "Constellation.id_of_coord: bad plane/slot";
  t.offsets.(shell) + (plane * sh.Shell.sats_per_plane) + slot

let position t ~time_s id =
  let { shell; plane; slot } = coord_of_id t id in
  Shell.position t.shells.(shell) ~plane ~slot ~time_s

let positions t ~time_s =
  Array.init t.total (fun id -> position t ~time_s id)

let starlink_phase1 =
  make ~name:"starlink-phase1"
    [ Shell.make ~name:"shell-1" ~altitude_km:540.0 ~inclination_deg:53.2
        ~planes:72 ~sats_per_plane:22 ();
      Shell.make ~name:"shell-2" ~altitude_km:550.0 ~inclination_deg:53.0
        ~planes:72 ~sats_per_plane:22 ();
      Shell.make ~name:"shell-3" ~altitude_km:560.0 ~inclination_deg:97.6
        ~planes:6 ~sats_per_plane:58 ();
      Shell.make ~name:"shell-4" ~altitude_km:570.0 ~inclination_deg:70.0
        ~planes:36 ~sats_per_plane:20 () ]

let iridium =
  make ~name:"iridium"
    [ Shell.make ~name:"iridium" ~altitude_km:781.0 ~inclination_deg:86.4
        ~planes:6 ~sats_per_plane:11 () ]

let mid_size ~plane_divisor =
  if plane_divisor <= 0 || 72 mod plane_divisor <> 0 then
    invalid_arg "Constellation.mid_size: divisor must divide 72";
  let planes = 72 / plane_divisor in
  make ~name:(Printf.sprintf "starlink-mid-%d" plane_divisor)
    [ Shell.make ~name:"shell-1" ~altitude_km:540.0 ~inclination_deg:53.2
        ~planes ~sats_per_plane:22 ();
      Shell.make ~name:"shell-2" ~altitude_km:550.0 ~inclination_deg:53.0
        ~planes ~sats_per_plane:22 () ]

let grid ?(altitude_km = 550.0) ?(inclination_deg = 53.0) ~planes ~sats_per_plane () =
  make ~name:(Printf.sprintf "grid-%dx%d" planes sats_per_plane)
    [ Shell.make ~name:"grid" ~altitude_km ~inclination_deg ~planes ~sats_per_plane () ]

let of_scale = function
  | 66 -> iridium
  | 176 -> grid ~planes:8 ~sats_per_plane:22 ()
  | 396 -> mid_size ~plane_divisor:8
  | 528 -> grid ~planes:24 ~sats_per_plane:22 ()
  | 1584 -> mid_size ~plane_divisor:2
  | 4236 -> starlink_phase1
  | n -> invalid_arg (Printf.sprintf "Constellation.of_scale: unknown scale %d" n)
