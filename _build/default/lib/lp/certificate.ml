type violation =
  | Constraint_violated of {
      index : int;
      lhs : float;
      sense : Simplex.sense;
      rhs : float;
      excess : float;
    }
  | Negative_variable of { index : int; value : float }
  | Objective_mismatch of { reported : float; recomputed : float }

type report = {
  violations : violation list;
  recomputed_objective : float;
  max_excess : float;
}

let valid r = r.violations = []

let sense_to_string = function
  | Simplex.Le -> "<="
  | Simplex.Ge -> ">="
  | Simplex.Eq -> "="

let violation_to_string = function
  | Constraint_violated { index; lhs; sense; rhs; excess } ->
      Printf.sprintf "constraint %d: %.9g %s %.9g violated by %.3g" index lhs
        (sense_to_string sense) rhs excess
  | Negative_variable { index; value } ->
      Printf.sprintf "variable %d negative: %.9g" index value
  | Objective_mismatch { reported; recomputed } ->
      Printf.sprintf "objective mismatch: reported %.9g, recomputed %.9g"
        reported recomputed

let report_to_string r =
  if valid r then
    Printf.sprintf "certificate ok (objective %.9g)" r.recomputed_objective
  else
    String.concat "; " (List.map violation_to_string r.violations)

(* Kahan-free dot product is fine here: constraint rows are short and
   the tolerance is relative to the row's own magnitude. *)
let dot coeffs x =
  let s = ref 0.0 in
  Array.iteri (fun j a -> s := !s +. (a *. x.(j))) coeffs;
  !s

let check ?(eps = 1e-6) ~c ~constraints outcome =
  match outcome with
  | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit -> None
  | Simplex.Optimal { objective; solution } ->
      if Array.length solution <> Array.length c then
        invalid_arg "Certificate.check: solution length mismatch";
      let violations = ref [] in
      let max_excess = ref 0.0 in
      Array.iteri
        (fun j v ->
          if v < -.eps then
            violations := Negative_variable { index = j; value = v } :: !violations)
        solution;
      List.iteri
        (fun i { Simplex.coeffs; sense; rhs } ->
          let lhs = dot coeffs solution in
          let scale =
            Array.fold_left
              (fun acc a -> Float.max acc (Float.abs a))
              (Float.max 1.0 (Float.abs rhs))
              coeffs
          in
          let excess =
            match sense with
            | Simplex.Le -> lhs -. rhs
            | Simplex.Ge -> rhs -. lhs
            | Simplex.Eq -> Float.abs (lhs -. rhs)
          in
          if excess > eps *. scale then begin
            max_excess := Float.max !max_excess excess;
            violations :=
              Constraint_violated { index = i; lhs; sense; rhs; excess }
              :: !violations
          end)
        constraints;
      let recomputed = dot c solution in
      if
        Float.abs (recomputed -. objective)
        > eps *. Float.max 1.0 (Float.abs recomputed)
      then
        violations :=
          Objective_mismatch { reported = objective; recomputed } :: !violations;
      Some
        { violations = List.rev !violations;
          recomputed_objective = recomputed;
          max_excess = !max_excess }
