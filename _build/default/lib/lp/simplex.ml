type sense = Le | Ge | Eq

type constr = { coeffs : float array; sense : sense; rhs : float }

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit

let solve ?(maximize = true) ?max_iters ?(eps = 1e-9) ~c ~constraints () =
  let n = Array.length c in
  List.iter
    (fun { coeffs; _ } ->
      if Array.length coeffs <> n then
        invalid_arg "Simplex.solve: coefficient length mismatch")
    constraints;
  (* Normalize: maximization with non-negative rhs. *)
  let c = if maximize then Array.copy c else Array.map (fun v -> -.v) c in
  let rows =
    List.map
      (fun { coeffs; sense; rhs } ->
        if rhs < 0.0 then
          ( Array.map (fun v -> -.v) coeffs,
            (match sense with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.rhs )
        else (Array.copy coeffs, sense, rhs))
      constraints
  in
  let m = List.length rows in
  let n_slack =
    List.fold_left
      (fun acc (_, s, _) -> match s with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let n_art =
    List.fold_left
      (fun acc (_, s, _) -> match s with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let total = n + n_slack + n_art in
  let tab = Array.make_matrix m (total + 1) 0.0 in
  let basis = Array.make m (-1) in
  let scale =
    List.fold_left
      (fun acc (coeffs, _, rhs) ->
        Array.fold_left (fun a v -> Float.max a (Float.abs v)) (Float.max acc rhs) coeffs)
      (Array.fold_left (fun a v -> Float.max a (Float.abs v)) 1.0 c)
      rows
  in
  let big_m = 1e6 *. scale in
  let slack_idx = ref n and art_idx = ref (n + n_slack) in
  List.iteri
    (fun i (coeffs, sense, rhs) ->
      Array.blit coeffs 0 tab.(i) 0 n;
      tab.(i).(total) <- rhs;
      (match sense with
      | Le ->
          tab.(i).(!slack_idx) <- 1.0;
          basis.(i) <- !slack_idx;
          incr slack_idx
      | Ge ->
          tab.(i).(!slack_idx) <- -1.0;
          incr slack_idx;
          tab.(i).(!art_idx) <- 1.0;
          basis.(i) <- !art_idx;
          incr art_idx
      | Eq ->
          tab.(i).(!art_idx) <- 1.0;
          basis.(i) <- !art_idx;
          incr art_idx))
    rows;
  (* Objective row: reduced costs (z_j - c_j form with sign such that
     a negative entry means improvement is possible). *)
  let obj = Array.make (total + 1) 0.0 in
  for j = 0 to n - 1 do
    obj.(j) <- -.c.(j)
  done;
  for j = n + n_slack to total - 1 do
    obj.(j) <- big_m
  done;
  (* Zero out the reduced costs of the initial (artificial) basics. *)
  for i = 0 to m - 1 do
    if basis.(i) >= n + n_slack then
      for j = 0 to total do
        obj.(j) <- obj.(j) -. (big_m *. tab.(i).(j))
      done
  done;
  let max_iters =
    match max_iters with Some k -> k | None -> 50 * (m + total + 1)
  in
  let bland_after = max_iters / 2 in
  let status = ref `Running in
  let iter = ref 0 in
  while !status = `Running do
    incr iter;
    if !iter > max_iters then status := `Iters
    else begin
      (* Entering column. *)
      let entering = ref (-1) in
      if !iter <= bland_after then begin
        let best = ref (-.eps) in
        for j = 0 to total - 1 do
          if obj.(j) < !best then begin
            best := obj.(j);
            entering := j
          end
        done
      end
      else begin
        (* Bland: first improving column. *)
        let j = ref 0 in
        while !entering < 0 && !j < total do
          if obj.(!j) < -.eps then entering := !j;
          incr j
        done
      end;
      if !entering < 0 then status := `Optimal
      else begin
        (* Ratio test (Bland tie-break on basis index). *)
        let e = !entering in
        let leave = ref (-1) and best_ratio = ref Float.infinity in
        for i = 0 to m - 1 do
          let a = tab.(i).(e) in
          if a > eps then begin
            let ratio = tab.(i).(total) /. a in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps
                 && (!leave < 0 || basis.(i) < basis.(!leave)))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then status := `Unbounded
        else begin
          let r = !leave in
          let pivot = tab.(r).(e) in
          for j = 0 to total do
            tab.(r).(j) <- tab.(r).(j) /. pivot
          done;
          for i = 0 to m - 1 do
            if i <> r then begin
              let factor = tab.(i).(e) in
              if Float.abs factor > 0.0 then
                for j = 0 to total do
                  tab.(i).(j) <- tab.(i).(j) -. (factor *. tab.(r).(j))
                done
            end
          done;
          let factor = obj.(e) in
          if Float.abs factor > 0.0 then
            for j = 0 to total do
              obj.(j) <- obj.(j) -. (factor *. tab.(r).(j))
            done;
          basis.(r) <- e
        end
      end
    end
  done;
  match !status with
  | `Unbounded -> Unbounded
  | `Iters -> Iteration_limit
  | `Optimal | `Running ->
      (* Infeasible if an artificial variable stays basic at a
         non-trivial level. *)
      let feasibility_tol = 1e-6 *. Float.max 1.0 scale in
      let infeasible = ref false in
      for i = 0 to m - 1 do
        if basis.(i) >= n + n_slack && tab.(i).(total) > feasibility_tol then
          infeasible := true
      done;
      if !infeasible then Infeasible
      else begin
        let solution = Array.make n 0.0 in
        for i = 0 to m - 1 do
          if basis.(i) < n then solution.(basis.(i)) <- tab.(i).(total)
        done;
        let objective =
          let v = ref 0.0 in
          for j = 0 to n - 1 do
            v := !v +. (c.(j) *. solution.(j))
          done;
          if maximize then !v else -. !v
        in
        Optimal { objective; solution }
      end
