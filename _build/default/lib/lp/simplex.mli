(** Dense simplex linear-programming solver.

    This is the repository's stand-in for the commercial solver the
    paper uses for ground-truth TE labels and as the "Gurobi"
    baseline.  It solves

    {v max/min  c . x   subject to   A x (<=|=|>=) b,  x >= 0 v}

    with the Big-M method for equality/>= rows and Bland's rule as an
    anti-cycling fallback.  Dense tableaus are adequate at the problem
    sizes used for label generation; production WAN solvers are
    faster, which only widens the latency gap the paper reports in
    SaTE's favour. *)

type sense = Le | Ge | Eq

type constr = { coeffs : float array; sense : sense; rhs : float }

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit

val solve :
  ?maximize:bool ->
  ?max_iters:int ->
  ?eps:float ->
  c:float array ->
  constraints:constr list ->
  unit ->
  outcome
(** [solve ~c ~constraints ()] optimizes [c . x] (maximization by
    default) over non-negative [x].  All [coeffs] arrays must share
    [c]'s length.  [max_iters] defaults to [50 * (rows + cols)]. *)
