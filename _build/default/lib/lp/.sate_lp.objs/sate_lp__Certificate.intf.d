lib/lp/certificate.mli: Simplex
