lib/lp/certificate.ml: Array Float List Printf Simplex String
