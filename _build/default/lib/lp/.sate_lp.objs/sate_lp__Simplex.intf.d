lib/lp/simplex.mli:
