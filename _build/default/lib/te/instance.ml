module Snapshot = Sate_topology.Snapshot
module Demand = Sate_traffic.Demand
module Path = Sate_paths.Path
module Path_db = Sate_paths.Path_db

type commodity = {
  src : int;
  dst : int;
  demand_mbps : float;
  paths : Path.t array;
  path_links : int array array;
}

type t = {
  snapshot : Snapshot.t;
  commodities : commodity array;
  up_caps : float array;
  down_caps : float array;
}

let make ?up_caps ?down_caps snapshot demand path_db =
  let n = Snapshot.num_nodes snapshot in
  let default_caps () = Array.make n Float.infinity in
  let up_caps =
    match up_caps with
    | Some c ->
        if Array.length c < n then begin
          (* Caps computed per satellite; relays get unbounded caps. *)
          let ext = default_caps () in
          Array.blit c 0 ext 0 (Array.length c);
          ext
        end
        else c
    | None -> default_caps ()
  in
  let down_caps =
    match down_caps with
    | Some c ->
        if Array.length c < n then begin
          let ext = default_caps () in
          Array.blit c 0 ext 0 (Array.length c);
          ext
        end
        else c
    | None -> default_caps ()
  in
  let commodities =
    Array.map
      (fun (e : Demand.entry) ->
        let paths =
          Path_db.paths path_db ~src:e.Demand.src ~dst:e.Demand.dst
          |> List.filter (Path.valid_in snapshot)
          |> Array.of_list
        in
        let path_links = Array.map (Path.link_indices snapshot) paths in
        { src = e.Demand.src;
          dst = e.Demand.dst;
          demand_mbps = e.Demand.demand_mbps;
          paths;
          path_links })
      demand.Demand.entries
  in
  { snapshot; commodities; up_caps; down_caps }

let num_commodities t = Array.length t.commodities

let num_paths t =
  Array.fold_left (fun acc c -> acc + Array.length c.paths) 0 t.commodities

let total_demand t =
  Array.fold_left (fun acc c -> acc +. c.demand_mbps) 0.0 t.commodities

let used_links t =
  let set = Hashtbl.create 256 in
  Array.iter
    (fun c ->
      Array.iter (fun links -> Array.iter (fun li -> Hashtbl.replace set li ()) links) c.path_links)
    t.commodities;
  let arr = Array.of_list (Hashtbl.fold (fun k () acc -> k :: acc) set []) in
  Array.sort compare arr;
  arr

let routable_demand t =
  Array.fold_left
    (fun acc c -> if Array.length c.paths > 0 then acc +. c.demand_mbps else acc)
    0.0 t.commodities
