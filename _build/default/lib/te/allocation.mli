(** Traffic allocations and the feasibility / quality metrics of
    Section 4 ("Performance Metrics") and Appendix H.

    An allocation assigns x_fp Mbps of commodity f to its candidate
    path p.  Learned models emit soft allocations that may violate
    constraints; {!trim} is the correction step of §3.3 that projects
    any allocation onto the feasible region before metrics are
    taken. *)

type t = float array array
(** [t.(f).(p)] is the rate of commodity [f] on its path [p]; the
    ragged shape mirrors [Instance.commodities]. *)

val zeros : Instance.t -> t

val scale_to_demand : Instance.t -> t -> t
(** Clamp negatives and scale each commodity down so its total does
    not exceed its demand (constraint 2.e). *)

val link_loads : Instance.t -> t -> float array
(** Load per snapshot link index. *)

val node_loads : Instance.t -> t -> float array * float array
(** [(uplink, downlink)] load per node: total rate sourced at /
    destined to the node (constraints 2.c, 2.d). *)

(** {1 Feasibility invariants}

    Every invariant of (2.b)-(2.f) can be checked individually;
    {!violations} reports exactly which resource is violated and by
    how much, {!is_feasible} is its silent boolean form. *)

type violation =
  | Negative_rate of { commodity : int; path : int; rate : float }
      (** (2.f) a path rate is below zero. *)
  | Demand_exceeded of { commodity : int; total : float; demand : float }
      (** (2.e) a commodity carries more than its demand. *)
  | Link_overload of { link : int; load : float; capacity : float }
      (** (2.b) a link carries more than its capacity. *)
  | Uplink_overload of { node : int; load : float; capacity : float }
      (** (2.c) a node sources more than its uplink capacity. *)
  | Downlink_overload of { node : int; load : float; capacity : float }
      (** (2.d) a node sinks more than its downlink capacity. *)

val violation_to_string : violation -> string

val violations : ?eps:float -> Instance.t -> t -> violation list
(** Every invariant violation beyond tolerance, in deterministic order
    (commodity checks first, then links, then node up/down). Empty
    iff the allocation is feasible. *)

val is_feasible : ?eps:float -> Instance.t -> t -> bool
(** All of (2.b)-(2.f) hold within tolerance ([violations] is
    empty). *)

val trim : Instance.t -> t -> t
(** Correction for constraint violation (§3.3): proportional scaling
    on overloaded links/nodes followed by a sequential exact pass, so
    the result always satisfies {!is_feasible}. *)

val total_flow : t -> float

val satisfied_ratio : Instance.t -> t -> float
(** Total allocated flow over total demand (the paper's "satisfied
    demand"); 1.0 when there is no demand. *)

val per_commodity_ratio : Instance.t -> t -> float array
(** Flow-level satisfied demand (Fig. 16a). *)

val mlu : Instance.t -> t -> float
(** Maximum link utilisation over links with finite capacity; 0 for
    an empty allocation. *)

val scale_to_full_demand : Instance.t -> t -> t
(** Rescale each commodity so its paths carry exactly its demand
    (commodities with zero predicted mass split demand equally over
    their paths).  Used to compare MLU across methods: utilisation is
    only meaningful between allocations carrying the same traffic, and
    may exceed 1. *)

val restrict_to_valid :
  Instance.t -> Sate_topology.Snapshot.t -> t -> t
(** Zero the rates of paths that are no longer valid in another
    snapshot — how a stale allocation degrades while a slow TE method
    is still computing (online evaluation, Sec. 5.4). *)
