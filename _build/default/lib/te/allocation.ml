module Snapshot = Sate_topology.Snapshot
module Link = Sate_topology.Link
module Path = Sate_paths.Path

type t = float array array

let zeros (inst : Instance.t) =
  Array.map (fun c -> Array.make (Array.length c.Instance.paths) 0.0) inst.Instance.commodities

let scale_to_demand (inst : Instance.t) alloc =
  Array.mapi
    (fun f rates ->
      let rates = Array.map (fun r -> Float.max 0.0 r) rates in
      let total = Array.fold_left ( +. ) 0.0 rates in
      let demand = inst.Instance.commodities.(f).Instance.demand_mbps in
      if total > demand && total > 0.0 then
        let factor = demand /. total in
        Array.map (fun r -> r *. factor) rates
      else rates)
    alloc

let link_loads (inst : Instance.t) alloc =
  let loads = Array.make (Array.length inst.Instance.snapshot.Snapshot.links) 0.0 in
  Array.iteri
    (fun f rates ->
      let c = inst.Instance.commodities.(f) in
      Array.iteri
        (fun p rate ->
          if rate > 0.0 then
            Array.iter (fun li -> loads.(li) <- loads.(li) +. rate) c.Instance.path_links.(p))
        rates)
    alloc;
  loads

let node_loads (inst : Instance.t) alloc =
  let n = Snapshot.num_nodes inst.Instance.snapshot in
  let up = Array.make n 0.0 and down = Array.make n 0.0 in
  Array.iteri
    (fun f rates ->
      let c = inst.Instance.commodities.(f) in
      let total = Array.fold_left ( +. ) 0.0 rates in
      up.(c.Instance.src) <- up.(c.Instance.src) +. total;
      down.(c.Instance.dst) <- down.(c.Instance.dst) +. total)
    alloc;
  (up, down)

type violation =
  | Negative_rate of { commodity : int; path : int; rate : float }
  | Demand_exceeded of { commodity : int; total : float; demand : float }
  | Link_overload of { link : int; load : float; capacity : float }
  | Uplink_overload of { node : int; load : float; capacity : float }
  | Downlink_overload of { node : int; load : float; capacity : float }

let violation_to_string = function
  | Negative_rate { commodity; path; rate } ->
      Printf.sprintf "commodity %d path %d: negative rate %.6g" commodity path
        rate
  | Demand_exceeded { commodity; total; demand } ->
      Printf.sprintf "commodity %d: allocated %.6g exceeds demand %.6g"
        commodity total demand
  | Link_overload { link; load; capacity } ->
      Printf.sprintf "link %d: load %.6g exceeds capacity %.6g" link load
        capacity
  | Uplink_overload { node; load; capacity } ->
      Printf.sprintf "node %d: uplink load %.6g exceeds capacity %.6g" node
        load capacity
  | Downlink_overload { node; load; capacity } ->
      Printf.sprintf "node %d: downlink load %.6g exceeds capacity %.6g" node
        load capacity

let violations ?(eps = 1e-6) (inst : Instance.t) alloc =
  let out = ref [] in
  let push v = out := v :: !out in
  Array.iteri
    (fun f rates ->
      let c = inst.Instance.commodities.(f) in
      let total = ref 0.0 in
      Array.iteri
        (fun p r ->
          if r < -.eps then push (Negative_rate { commodity = f; path = p; rate = r });
          total := !total +. r)
        rates;
      if !total > c.Instance.demand_mbps +. eps then
        push
          (Demand_exceeded
             { commodity = f; total = !total; demand = c.Instance.demand_mbps }))
    alloc;
  let loads = link_loads inst alloc in
  Array.iteri
    (fun li load ->
      let cap = inst.Instance.snapshot.Snapshot.links.(li).Link.capacity_mbps in
      if load > cap +. eps then
        push (Link_overload { link = li; load; capacity = cap }))
    loads;
  let up, down = node_loads inst alloc in
  Array.iteri
    (fun n l ->
      if l > inst.Instance.up_caps.(n) +. eps then
        push (Uplink_overload { node = n; load = l; capacity = inst.Instance.up_caps.(n) }))
    up;
  Array.iteri
    (fun n l ->
      if l > inst.Instance.down_caps.(n) +. eps then
        push
          (Downlink_overload
             { node = n; load = l; capacity = inst.Instance.down_caps.(n) }))
    down;
  List.rev !out

let is_feasible ?eps (inst : Instance.t) alloc = violations ?eps inst alloc = []

(* Proportional smoothing: scale every path flow by the worst
   overload factor among the resources it touches.  Keeps relative
   shares fair before the exact pass. *)
let proportional_pass (inst : Instance.t) alloc =
  let loads = link_loads inst alloc in
  let up, down = node_loads inst alloc in
  let link_factor li =
    let cap = inst.Instance.snapshot.Snapshot.links.(li).Link.capacity_mbps in
    if loads.(li) > cap && loads.(li) > 0.0 then cap /. loads.(li) else 1.0
  in
  let node_factor caps loads n =
    if loads.(n) > caps.(n) && loads.(n) > 0.0 then caps.(n) /. loads.(n) else 1.0
  in
  Array.mapi
    (fun f rates ->
      let c = inst.Instance.commodities.(f) in
      Array.mapi
        (fun p rate ->
          if rate <= 0.0 then 0.0
          else begin
            let factor = ref 1.0 in
            Array.iter
              (fun li -> factor := Float.min !factor (link_factor li))
              c.Instance.path_links.(p);
            factor := Float.min !factor (node_factor inst.Instance.up_caps up c.Instance.src);
            factor := Float.min !factor (node_factor inst.Instance.down_caps down c.Instance.dst);
            rate *. !factor
          end)
        rates)
    alloc

(* Exact sequential pass: walk flows in order, clipping each to the
   remaining capacity of every resource it uses.  Guarantees
   feasibility. *)
let exact_pass (inst : Instance.t) alloc =
  let remaining_link =
    Array.map (fun l -> l.Link.capacity_mbps) inst.Instance.snapshot.Snapshot.links
  in
  let remaining_up = Array.copy inst.Instance.up_caps in
  let remaining_down = Array.copy inst.Instance.down_caps in
  Array.mapi
    (fun f rates ->
      let c = inst.Instance.commodities.(f) in
      let remaining_demand = ref c.Instance.demand_mbps in
      Array.mapi
        (fun p rate ->
          if rate <= 0.0 then 0.0
          else begin
            let headroom = ref (Float.min rate !remaining_demand) in
            Array.iter
              (fun li -> headroom := Float.min !headroom remaining_link.(li))
              c.Instance.path_links.(p);
            headroom := Float.min !headroom remaining_up.(c.Instance.src);
            headroom := Float.min !headroom remaining_down.(c.Instance.dst);
            let final = Float.max 0.0 !headroom in
            if final > 0.0 then begin
              Array.iter
                (fun li -> remaining_link.(li) <- remaining_link.(li) -. final)
                c.Instance.path_links.(p);
              remaining_up.(c.Instance.src) <- remaining_up.(c.Instance.src) -. final;
              remaining_down.(c.Instance.dst) <- remaining_down.(c.Instance.dst) -. final;
              remaining_demand := !remaining_demand -. final
            end;
            final
          end)
        rates)
    alloc

let trim inst alloc =
  let alloc = scale_to_demand inst alloc in
  let alloc = proportional_pass inst alloc in
  exact_pass inst alloc

let total_flow alloc =
  Array.fold_left
    (fun acc rates -> acc +. Array.fold_left ( +. ) 0.0 rates)
    0.0 alloc

let satisfied_ratio inst alloc =
  let demand = Instance.total_demand inst in
  if demand <= 0.0 then 1.0 else total_flow alloc /. demand

let per_commodity_ratio (inst : Instance.t) alloc =
  Array.mapi
    (fun f rates ->
      let d = inst.Instance.commodities.(f).Instance.demand_mbps in
      if d <= 0.0 then 1.0 else Array.fold_left ( +. ) 0.0 rates /. d)
    alloc

let mlu inst alloc =
  let loads = link_loads inst alloc in
  let worst = ref 0.0 in
  Array.iteri
    (fun li load ->
      let cap = inst.Instance.snapshot.Snapshot.links.(li).Link.capacity_mbps in
      if Float.is_finite cap && cap > 0.0 then
        worst := Float.max !worst (load /. cap))
    loads;
  !worst

let scale_to_full_demand (inst : Instance.t) alloc =
  Array.mapi
    (fun f rates ->
      let c = inst.Instance.commodities.(f) in
      let n = Array.length rates in
      if n = 0 then rates
      else begin
        let total = Array.fold_left (fun acc r -> acc +. Float.max 0.0 r) 0.0 rates in
        if total > 1e-9 then
          Array.map (fun r -> Float.max 0.0 r *. c.Instance.demand_mbps /. total) rates
        else Array.make n (c.Instance.demand_mbps /. float_of_int n)
      end)
    alloc

let restrict_to_valid (inst : Instance.t) snap alloc =
  Array.mapi
    (fun f rates ->
      let c = inst.Instance.commodities.(f) in
      Array.mapi
        (fun p rate ->
          if rate > 0.0 && Path.valid_in snap c.Instance.paths.(p) then rate
          else 0.0)
        rates)
    alloc
