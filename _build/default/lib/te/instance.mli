(** A concrete TE problem instance (Appendix A).

    One instance freezes the three TE inputs of Fig. 3: the topology
    snapshot, the traffic matrix (as commodities = non-zero demand
    entries, i.e. already traffic-pruned per §3.4), and the
    preconfigured candidate paths per commodity.  Per-satellite uplink
    and downlink capacities realise constraints (2.c) and (2.d). *)

type commodity = {
  src : int;
  dst : int;
  demand_mbps : float;
  paths : Sate_paths.Path.t array;  (** Candidate paths P_f. *)
  path_links : int array array;
      (** [path_links.(p)] = indices into [snapshot.links] of path p's
          hops (the Phi_pe incidence). *)
}

type t = {
  snapshot : Sate_topology.Snapshot.t;
  commodities : commodity array;
  up_caps : float array;  (** Per-node uplink capacity (2.c). *)
  down_caps : float array;  (** Per-node downlink capacity (2.d). *)
}

val make :
  ?up_caps:float array ->
  ?down_caps:float array ->
  Sate_topology.Snapshot.t ->
  Sate_traffic.Demand.t ->
  Sate_paths.Path_db.t ->
  t
(** Build an instance: one commodity per demand entry, with its
    candidate paths taken from the database (entries whose stored
    paths are invalid in this snapshot keep only the valid ones).
    Capacities default to unbounded. *)

val num_commodities : t -> int

val num_paths : t -> int
(** Total candidate paths across commodities (the LP variable count). *)

val total_demand : t -> float

val used_links : t -> int array
(** Sorted indices of links appearing in any candidate path — the
    only links that need capacity constraints (path pruning, §3.4). *)

val routable_demand : t -> float
(** Demand of commodities that have at least one candidate path — the
    best any path-based method can possibly satisfy. *)
