lib/te/allocation.mli: Instance Sate_topology
