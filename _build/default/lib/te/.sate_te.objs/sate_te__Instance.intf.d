lib/te/instance.mli: Sate_paths Sate_topology Sate_traffic
