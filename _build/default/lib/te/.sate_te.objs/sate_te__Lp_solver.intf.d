lib/te/lp_solver.mli: Allocation Instance
