lib/te/allocation.ml: Array Float Instance Sate_paths Sate_topology
