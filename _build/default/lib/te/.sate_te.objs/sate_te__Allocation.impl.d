lib/te/allocation.ml: Array Float Instance List Printf Sate_paths Sate_topology
