lib/te/instance.ml: Array Float Hashtbl List Sate_paths Sate_topology Sate_traffic
