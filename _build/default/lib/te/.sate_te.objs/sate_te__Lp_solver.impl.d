lib/te/lp_solver.ml: Allocation Array Float Fun Hashtbl Instance List Option Sate_lp Sate_topology
