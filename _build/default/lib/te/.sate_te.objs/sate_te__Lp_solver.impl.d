lib/te/lp_solver.ml: Allocation Array Float Fun Hashtbl Instance List Option Printf Sate_lp Sate_topology
