(** Data-point volume accounting (Section 3.4, Table 1).

    A TE data point for a DNN-based method must materialise the dense
    [n x n] traffic matrix plus all [n x n x k] preconfigured paths;
    SaTE's traffic & path pruning keeps only non-zero demands and
    their candidate paths.  This module measures both
    representations. *)

type report = {
  scale : int;  (** Number of satellites. *)
  original_path_gb : float;
  pruned_path_gb : float;
  original_traffic_gb : float;
  pruned_traffic_gb : float;
  reduction : float;  (** Total original / total pruned. *)
}

val measure :
  num_sats:int ->
  k:int ->
  avg_path_hops:float ->
  demand:Sate_traffic.Demand.t ->
  active_paths:int ->
  active_path_hops:int ->
  report
(** [measure] computes the dense sizes analytically (4-byte floats:
    [n^2] demands; [n^2 * k] paths of [avg_path_hops] node ids) and
    the pruned sizes from the actual sparse data (non-zero demand
    entries; [active_paths] stored paths totalling [active_path_hops]
    node ids). *)

val of_instance : k:int -> Sate_te.Instance.t -> Sate_traffic.Demand.t -> report
(** Convenience: derive all counts from a built instance. *)

val pp : Format.formatter -> report -> unit
