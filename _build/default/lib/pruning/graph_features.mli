(** Fixed-size topology vectorisation (Appendix E, Graph2Vec step).

    Graph2Vec embeds graphs from their Weisfeiler–Lehman subtree
    structures; this module computes the same WL subtree features
    directly and feature-hashes their counts into a fixed-dimension
    vector, so topologies with similar local structure land close in
    the embedding space. *)

val dimension : int
(** 128, matching the paper's Graph2Vec dimensionality. *)

val vectorize :
  ?rounds:int -> Sate_topology.Snapshot.t -> float array
(** WL refinement for [rounds] iterations (default 3) starting from
    degree labels; every (node, round) label is hashed into one of
    {!dimension} buckets.  The result is L2-normalised. *)

val cosine : float array -> float array -> float
(** Cosine similarity of two vectors. *)

val euclidean : float array -> float array -> float
