(** Determinantal-point-process subset selection (Appendix E).

    Greedy MAP inference for a DPP with RBF kernel
    [K(i,j) = exp (-||v_i - v_j||^2 / (2 sigma^2))]: repeatedly pick
    the item with the largest marginal log-determinant gain (Chen et
    al.'s fast greedy algorithm, O(n k d)).  Maximising the
    determinant selects maximally diverse vectors, i.e. structurally
    diverse topologies. *)

val select :
  ?sigma:float -> vectors:float array array -> k:int -> unit -> int array
(** Indices of [k] diverse items: the determinant-gain order first,
    topped up arbitrarily once near-duplicates exhaust the gain (so
    callers always get [min k n] items).  [sigma] defaults to the
    median pairwise distance estimated on a sample. *)

val select_random : seed:int -> n:int -> k:int -> int array
(** Uniform random baseline for the DPP-vs-random ablation. *)
