module Rng = Sate_util.Rng

let rbf sigma a b =
  let d = Graph_features.euclidean a b in
  exp (-.(d *. d) /. (2.0 *. sigma *. sigma))

let median_distance vectors =
  let n = Array.length vectors in
  if n < 2 then 1.0
  else begin
    (* Sample up to ~200 pairs deterministically. *)
    let ds = ref [] in
    let stride = max 1 (n * (n - 1) / 2 / 200) in
    let count = ref 0 in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        if !count mod stride = 0 then
          ds := Graph_features.euclidean vectors.(i) vectors.(j) :: !ds;
        incr count
      done
    done;
    let arr = Array.of_list !ds in
    if Array.length arr = 0 then 1.0
    else begin
      let m = Sate_util.Stats.median arr in
      if m > 1e-9 then m else 1.0
    end
  end

let select ?sigma ~vectors ~k () =
  let n = Array.length vectors in
  if n = 0 || k <= 0 then [||]
  else begin
    let sigma = match sigma with Some s -> s | None -> median_distance vectors in
    let k = min k n in
    (* Chen et al. fast greedy MAP: d2.(i) is the current marginal
       gain; cis.(step).(i) the Cholesky coefficients. *)
    let d2 = Array.make n 1.0 in
    (* K_ii = 1 for RBF. *)
    let cis = Array.make_matrix k n 0.0 in
    let selected = ref [] in
    let chosen = Array.make n false in
    let continue = ref true in
    let step = ref 0 in
    while !continue && !step < k do
      let best = ref (-1) and best_gain = ref 1e-12 in
      for i = 0 to n - 1 do
        if (not chosen.(i)) && d2.(i) > !best_gain then begin
          best_gain := d2.(i);
          best := i
        end
      done;
      (* Near-duplicate vectors exhaust the determinant gain early;
         keep filling to k with the best remaining candidates so the
         caller gets the requested sample size (standard MAP-DPP
         practice). *)
      let fallback = !best < 0 in
      if fallback then begin
        let i = ref 0 and pick = ref (-1) in
        while !pick < 0 && !i < n do
          if not chosen.(!i) then pick := !i;
          incr i
        done;
        best := !pick
      end;
      if !best < 0 then continue := false
      else begin
        let j = !best in
        chosen.(j) <- true;
        selected := j :: !selected;
        let dj = sqrt (Float.max 1e-12 d2.(j)) in
        for i = 0 to n - 1 do
          if not chosen.(i) then begin
            let kij = rbf sigma vectors.(j) vectors.(i) in
            let dot = ref 0.0 in
            for s = 0 to !step - 1 do
              dot := !dot +. (cis.(s).(j) *. cis.(s).(i))
            done;
            let e = (kij -. !dot) /. dj in
            cis.(!step).(i) <- e;
            d2.(i) <- d2.(i) -. (e *. e)
          end
        done;
        incr step
      end
    done;
    Array.of_list (List.rev !selected)
  end

let select_random ~seed ~n ~k =
  let rng = Rng.create seed in
  let idx = Array.init n Fun.id in
  Rng.shuffle rng idx;
  Array.sub idx 0 (min k n)
