module Demand = Sate_traffic.Demand
module Instance = Sate_te.Instance

type report = {
  scale : int;
  original_path_gb : float;
  pruned_path_gb : float;
  original_traffic_gb : float;
  pruned_traffic_gb : float;
  reduction : float;
}

let gb bytes = bytes /. 1e9

let measure ~num_sats ~k ~avg_path_hops ~demand ~active_paths ~active_path_hops =
  let n = float_of_int num_sats in
  (* Dense float32 traffic matrix. *)
  let original_traffic = n *. n *. 4.0 in
  (* Dense path store: k paths per ordered pair, each a sequence of
     ~avg_path_hops+1 node ids (4 bytes each). *)
  let original_path = n *. n *. float_of_int k *. (avg_path_hops +. 1.0) *. 4.0 in
  let pruned_traffic = float_of_int (Demand.sparse_volume_bytes demand) in
  let pruned_path = float_of_int ((active_path_hops + active_paths) * 4) in
  let total_orig = original_traffic +. original_path in
  let total_pruned = Float.max 1.0 (pruned_traffic +. pruned_path) in
  { scale = num_sats;
    original_path_gb = gb original_path;
    pruned_path_gb = gb pruned_path;
    original_traffic_gb = gb original_traffic;
    pruned_traffic_gb = gb pruned_traffic;
    reduction = total_orig /. total_pruned }

let of_instance ~k (inst : Instance.t) demand =
  let num_sats = inst.Instance.snapshot.Sate_topology.Snapshot.num_sats in
  let active_paths = Instance.num_paths inst in
  let active_path_hops =
    Array.fold_left
      (fun acc c ->
        Array.fold_left
          (fun acc p -> acc + Sate_paths.Path.hops p)
          acc c.Instance.paths)
      0 inst.Instance.commodities
  in
  (* Average hop count of stored paths as the dense-store estimate;
     fall back to sqrt(n) (grid diameter scale) with no paths. *)
  let avg_path_hops =
    if active_paths > 0 then float_of_int active_path_hops /. float_of_int active_paths
    else sqrt (float_of_int num_sats)
  in
  measure ~num_sats ~k ~avg_path_hops ~demand ~active_paths ~active_path_hops

let pp fmt r =
  Format.fprintf fmt
    "scale %d: paths %.4g -> %.4g GB, traffic %.4g -> %.4g GB, reduction %.0fx"
    r.scale r.original_path_gb r.pruned_path_gb r.original_traffic_gb
    r.pruned_traffic_gb r.reduction
