module Snapshot = Sate_topology.Snapshot

let dimension = 128

(* Deterministic string hash (FNV-1a) so vectors are stable across
   runs — Hashtbl.hash is also deterministic but unspecified across
   compiler versions. *)
let fnv1a s =
  let h = ref 0x84222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let vectorize ?(rounds = 3) snap =
  let n = Snapshot.num_nodes snap in
  let counts = Array.make dimension 0.0 in
  let labels = Array.init n (fun i -> string_of_int (Snapshot.degree snap i)) in
  let record lbl =
    counts.(fnv1a lbl mod dimension) <- counts.(fnv1a lbl mod dimension) +. 1.0
  in
  Array.iter record labels;
  let current = ref labels in
  for _ = 1 to rounds do
    let next =
      Array.mapi
        (fun i lbl ->
          let neigh =
            Snapshot.neighbors snap i
            |> List.map (fun (j, _) -> !current.(j))
            |> List.sort compare
          in
          lbl ^ "|" ^ String.concat "," neigh)
        !current
    in
    (* Compress labels to their hash to bound string growth. *)
    let compressed = Array.map (fun l -> string_of_int (fnv1a l)) next in
    Array.iter record compressed;
    current := compressed
  done;
  let norm = sqrt (Array.fold_left (fun a v -> a +. (v *. v)) 0.0 counts) in
  if norm > 0.0 then Array.map (fun v -> v /. norm) counts else counts

let cosine a b =
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  Array.iteri
    (fun i v ->
      dot := !dot +. (v *. b.(i));
      na := !na +. (v *. v);
      nb := !nb +. (b.(i) *. b.(i)))
    a;
  if !na = 0.0 || !nb = 0.0 then 0.0 else !dot /. sqrt (!na *. !nb)

let euclidean a b =
  let acc = ref 0.0 in
  Array.iteri
    (fun i v ->
      let d = v -. b.(i) in
      acc := !acc +. (d *. d))
    a;
  sqrt !acc
