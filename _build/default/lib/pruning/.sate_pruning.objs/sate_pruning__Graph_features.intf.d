lib/pruning/graph_features.mli: Sate_topology
