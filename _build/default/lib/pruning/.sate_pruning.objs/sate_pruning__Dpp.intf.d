lib/pruning/dpp.mli:
