lib/pruning/graph_features.ml: Array Char List Sate_topology String
