lib/pruning/volume.mli: Format Sate_te Sate_traffic
