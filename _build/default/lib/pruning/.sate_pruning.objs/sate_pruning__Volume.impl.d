lib/pruning/volume.ml: Array Float Format Sate_paths Sate_te Sate_topology Sate_traffic
