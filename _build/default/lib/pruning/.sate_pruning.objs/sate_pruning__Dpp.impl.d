lib/pruning/dpp.ml: Array Float Fun Graph_features List Sate_util
