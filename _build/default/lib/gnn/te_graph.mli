(** The heterogeneous satellite TE graph (Section 3.2, Fig. 6).

    Three node kinds — {e satellite} (topology nodes, including
    ground relays in the bent-pipe regime), {e path} (candidate paths
    of all commodities), and {e traffic} (non-zero demand entries) —
    and the three relation kinds of the simplified graph (Fig. 6b):

    - R1 {e connects}: satellite <-> satellite, one directed edge pair
      per live ISL, edge feature = link capacity (the Link element of
      Fig. 6a merged into the relation weight);
    - R2 {e crosses}: path <-> satellite for every satellite a path
      traverses, edge feature = hop position along the path;
    - R3 {e transports}: path <-> traffic demand it can carry, edge
      feature = the demand's candidate-path count.

    The optional {e access} relation (traffic <-> its source and
    destination satellites) is the redundancy removed by the graph
    reduction; it is materialised only when [with_access_relation] is
    set, for the ablation study. *)

open Sate_tensor

type edges = {
  src : int array;  (** Source node index per edge (into the source set). *)
  dst : int array;  (** Destination node index per edge. *)
  feat : Tensor.t;  (** [m x 1] edge features. *)
}

type t = {
  num_sats : int;
  num_paths : int;
  num_traffic : int;
  sat_feat : Tensor.t;  (** [S x 1] neighbour counts (NE1 input). *)
  path_feat : Tensor.t;  (** [P x 1] path lengths (NE2 input). *)
  traffic_feat : Tensor.t;  (** [T x 1] demands (NE3 input). *)
  r1 : edges;  (** satellite -> satellite. *)
  r2 : edges;  (** path -> satellite (reverse direction derived). *)
  r3 : edges;  (** path -> traffic (reverse direction derived). *)
  access : edges option;  (** traffic -> satellite, ablation only. *)
  path_commodity : int array;  (** Commodity index of each path node. *)
  path_demand : float array;  (** Demand of each path's commodity. *)
  incidence_path : int array;
      (** Flattened (path, link) incidence: path node per entry. *)
  incidence_link : int array;
      (** Used-link position per entry (into {!link_caps}). *)
  link_caps : float array;  (** Capacity per used link. *)
}

val of_instance : ?with_access_relation:bool -> Sate_te.Instance.t -> t
(** Build the graph for a TE instance.  Feature scales are normalised
    (demands by 100 Mbps, positions by path length) so embeddings
    start O(1). *)

val reverse : edges -> edges
(** Swap edge direction (for the path -> sat / sat -> path pair). *)

val memory_estimate_bytes : t -> int
(** Rough in-memory footprint of the graph tensors — the quantity
    dataset pruning keeps under control (Table 1). *)
