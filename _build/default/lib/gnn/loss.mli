(** The mixed training loss of Appendix B (Eqs. 4, 5):

    {v L = L_supervised
        + (- lambda_flow * total_flow + sum_i alpha_i * over_flow_i)
          / (lambda_balance * lambda_flow * total_demand) v}

    where [alpha_i = exp (min (utilization_i / capacity_i, alpha_max))]
    weighs each link's overload penalty, [total_flow] rewards
    allocated traffic, and [L_supervised] is the mean squared error
    against the LP labels (as allocation ratios). *)

type config = {
  lambda_flow : float;
  lambda_balance : float;
  alpha_max : float;
  supervised_weight : float;
}

val default_config : config
(** Grid-searched defaults used across the evaluation (the balance
    keeps the early overload penalty from collapsing the allocator to
    zero before the supervised signal takes hold). *)

val compute :
  config ->
  Te_graph.t ->
  pred_ratios:Sate_nn.Autodiff.t ->
  label_ratios:Sate_tensor.Tensor.t ->
  Sate_nn.Autodiff.t
(** Scalar loss node; differentiable end to end (including the
    penalty term, through the clamped exponential). *)

val label_ratios_of_alloc :
  Sate_te.Instance.t -> Sate_te.Allocation.t -> Sate_tensor.Tensor.t
(** Convert an (LP-optimal) allocation into the per-path ratio labels
    the supervised term compares against, ordered like the graph's
    path nodes. *)
