(** Supervised training of the SaTE model against LP labels
    (Section 3.3 "Training Method"). *)

type sample = {
  instance : Sate_te.Instance.t;
  graph : Te_graph.t;
  labels : Sate_tensor.Tensor.t;  (** Optimal allocation ratios. *)
}

val make_sample :
  ?with_access_relation:bool ->
  ?objective:Sate_te.Lp_solver.objective ->
  Sate_te.Instance.t ->
  sample
(** Solve the instance exactly with the LP solver to obtain labels
    (max-throughput by default; [Min_mlu] for the Appendix H.2
    variant), and pre-build its TE graph. *)

type report = {
  epochs_run : int;
  losses : float array;  (** Mean loss per epoch. *)
  wall_clock_s : float;
}

val train :
  ?loss_config:Loss.config ->
  ?epochs:int ->
  ?lr:float ->
  ?shuffle_seed:int ->
  Model.t ->
  sample list ->
  report
(** Adam over per-sample losses, samples shuffled each epoch. *)

val fine_tune :
  ?loss_config:Loss.config ->
  ?epochs:int ->
  ?lr:float ->
  Model.t ->
  sample list ->
  report
(** Continue training an existing (e.g. transferred) model at a
    reduced learning rate — the curriculum-style adaptation the paper
    suggests for constellations under gradual expansion (Sec. 7). *)

val evaluate : Model.t -> sample list -> float
(** Mean satisfied-demand ratio of trimmed predictions. *)

val inference_time_ms : Model.t -> sample -> float
(** Wall-clock of one forward pass (graph already built), i.e. the
    paper's "computational latency" for SaTE. *)
