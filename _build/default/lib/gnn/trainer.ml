open Sate_tensor
module A = Sate_nn.Autodiff
module Optimizer = Sate_nn.Optimizer
module Rng = Sate_util.Rng

type sample = {
  instance : Sate_te.Instance.t;
  graph : Te_graph.t;
  labels : Tensor.t;
}

let make_sample ?(with_access_relation = false) ?(objective = Sate_te.Lp_solver.Max_throughput)
    instance =
  let alloc = Sate_te.Lp_solver.solve ~objective instance in
  { instance;
    graph = Te_graph.of_instance ~with_access_relation instance;
    labels = Loss.label_ratios_of_alloc instance alloc }

type report = {
  epochs_run : int;
  losses : float array;
  wall_clock_s : float;
}

let train ?(loss_config = Loss.default_config) ?(epochs = 30) ?(lr = 2e-3)
    ?(shuffle_seed = 17) model samples =
  let t0 = Unix.gettimeofday () in
  let params = Model.params model in
  let opt = Optimizer.adam ~lr params in
  let rng = Rng.create shuffle_seed in
  let samples = Array.of_list samples in
  let losses = Array.make epochs 0.0 in
  for epoch = 0 to epochs - 1 do
    Rng.shuffle rng samples;
    let total = ref 0.0 and count = ref 0 in
    Array.iter
      (fun s ->
        if s.graph.Te_graph.num_paths > 0 then begin
          let pred = Model.forward model s.graph in
          let loss =
            Loss.compute loss_config s.graph ~pred_ratios:pred
              ~label_ratios:s.labels
          in
          A.backward loss;
          Optimizer.step opt;
          total := !total +. A.scalar_value loss;
          incr count
        end)
      samples;
    losses.(epoch) <- (if !count > 0 then !total /. float_of_int !count else 0.0)
  done;
  { epochs_run = epochs; losses; wall_clock_s = Unix.gettimeofday () -. t0 }

let fine_tune ?loss_config ?(epochs = 10) ?(lr = 5e-4) model samples =
  train ?loss_config ~epochs ~lr model samples

let evaluate model samples =
  let ratios =
    List.map
      (fun s ->
        let alloc = Model.predict model s.instance in
        Sate_te.Allocation.satisfied_ratio s.instance alloc)
      samples
  in
  match ratios with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)

let inference_time_ms model sample =
  let t0 = Unix.gettimeofday () in
  ignore (Model.forward model sample.graph);
  (Unix.gettimeofday () -. t0) *. 1000.0
