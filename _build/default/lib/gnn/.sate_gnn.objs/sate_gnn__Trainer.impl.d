lib/gnn/trainer.ml: Array List Loss Model Sate_nn Sate_te Sate_tensor Sate_util Te_graph Tensor Unix
