lib/gnn/trainer.mli: Loss Model Sate_te Sate_tensor Te_graph
