lib/gnn/te_graph.ml: Array Float Hashtbl List Sate_paths Sate_te Sate_tensor Sate_topology Tensor
