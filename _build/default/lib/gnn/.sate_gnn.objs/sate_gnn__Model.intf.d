lib/gnn/model.mli: Sate_nn Sate_te Te_graph
