lib/gnn/loss.ml: Array Float List Sate_nn Sate_te Sate_tensor Te_graph Tensor
