lib/gnn/model.ml: Array Fun Gat List Marshal Sate_nn Sate_te Sate_tensor Sate_util Te_graph Tensor
