lib/gnn/gat.mli: Sate_nn Sate_util Te_graph
