lib/gnn/te_graph.mli: Sate_te Sate_tensor Tensor
