lib/gnn/gat.ml: Array List Sate_nn Sate_tensor Te_graph Tensor
