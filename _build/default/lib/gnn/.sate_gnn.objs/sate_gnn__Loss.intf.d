lib/gnn/loss.mli: Sate_nn Sate_te Sate_tensor Te_graph
