open Sate_tensor
module Instance = Sate_te.Instance
module Snapshot = Sate_topology.Snapshot
module Link = Sate_topology.Link

type edges = { src : int array; dst : int array; feat : Tensor.t }

type t = {
  num_sats : int;
  num_paths : int;
  num_traffic : int;
  sat_feat : Tensor.t;
  path_feat : Tensor.t;
  traffic_feat : Tensor.t;
  r1 : edges;
  r2 : edges;
  r3 : edges;
  access : edges option;
  path_commodity : int array;
  path_demand : float array;
  incidence_path : int array;
  incidence_link : int array;
  link_caps : float array;
}

let demand_scale = 100.0

let capacity_scale = 200.0

let reverse e = { e with src = e.dst; dst = e.src }

let of_instance ?(with_access_relation = false) (inst : Instance.t) =
  let snap = inst.Instance.snapshot in
  let num_sats = Snapshot.num_nodes snap in
  let commodities = inst.Instance.commodities in
  let num_traffic = Array.length commodities in
  (* Path nodes flattened commodity-major. *)
  let num_paths =
    Array.fold_left (fun acc c -> acc + Array.length c.Instance.paths) 0 commodities
  in
  let path_commodity = Array.make num_paths 0 in
  let path_demand = Array.make num_paths 0.0 in
  let path_len = Array.make num_paths 0.0 in
  (* R2: path <-> satellites it crosses. *)
  let r2_src = ref [] and r2_dst = ref [] and r2_feat = ref [] in
  (* R3: path <-> its traffic demand. *)
  let r3_src = ref [] and r3_dst = ref [] and r3_feat = ref [] in
  (* Incidence for the loss: (path, used-link) pairs. *)
  let used = Instance.used_links inst in
  let link_pos = Hashtbl.create (Array.length used) in
  Array.iteri (fun pos li -> Hashtbl.replace link_pos li pos) used;
  let inc_path = ref [] and inc_link = ref [] in
  let p = ref 0 in
  Array.iteri
    (fun f (c : Instance.commodity) ->
      let k = float_of_int (Array.length c.Instance.paths) in
      Array.iteri
        (fun pi (path : Sate_paths.Path.t) ->
          let node = !p in
          path_commodity.(node) <- f;
          path_demand.(node) <- c.Instance.demand_mbps;
          let hops = float_of_int (Sate_paths.Path.hops path) in
          path_len.(node) <- hops /. 10.0;
          Array.iteri
            (fun hop sat ->
              r2_src := node :: !r2_src;
              r2_dst := sat :: !r2_dst;
              r2_feat :=
                (float_of_int hop /. Float.max 1.0 hops) :: !r2_feat)
            path.Sate_paths.Path.nodes;
          r3_src := node :: !r3_src;
          r3_dst := f :: !r3_dst;
          r3_feat := (k /. 10.0) :: !r3_feat;
          Array.iter
            (fun li ->
              inc_path := node :: !inc_path;
              inc_link := Hashtbl.find link_pos li :: !inc_link)
            c.Instance.path_links.(pi);
          incr p)
        c.Instance.paths)
    commodities;
  (* R1: one directed edge pair per live link. *)
  let links = snap.Snapshot.links in
  let m1 = 2 * Array.length links in
  let r1_src = Array.make (max m1 0) 0 in
  let r1_dst = Array.make (max m1 0) 0 in
  let r1_feat = Tensor.create (max m1 0) 1 in
  Array.iteri
    (fun i (l : Link.t) ->
      r1_src.(2 * i) <- l.Link.u;
      r1_dst.(2 * i) <- l.Link.v;
      r1_src.((2 * i) + 1) <- l.Link.v;
      r1_dst.((2 * i) + 1) <- l.Link.u;
      let f = l.Link.capacity_mbps /. capacity_scale in
      Tensor.set r1_feat (2 * i) 0 f;
      Tensor.set r1_feat ((2 * i) + 1) 0 f)
    links;
  let sat_feat =
    Tensor.init num_sats 1 (fun i _ -> float_of_int (Snapshot.degree snap i) /. 4.0)
  in
  let traffic_feat =
    Tensor.init num_traffic 1 (fun f _ ->
        commodities.(f).Instance.demand_mbps /. demand_scale)
  in
  let to_edges src dst feat =
    { src = Array.of_list (List.rev src);
      dst = Array.of_list (List.rev dst);
      feat = Tensor.of_column (Array.of_list (List.rev feat)) }
  in
  let access =
    if not with_access_relation then None
    else begin
      (* Redundant access relation: traffic -> its endpoint satellites. *)
      let src = ref [] and dst = ref [] and feat = ref [] in
      Array.iteri
        (fun f (c : Instance.commodity) ->
          src := f :: f :: !src;
          dst := c.Instance.dst :: c.Instance.src :: !dst;
          feat :=
            (c.Instance.demand_mbps /. demand_scale)
            :: (c.Instance.demand_mbps /. demand_scale)
            :: !feat)
        commodities;
      Some (to_edges !src !dst !feat)
    end
  in
  { num_sats;
    num_paths;
    num_traffic;
    sat_feat;
    path_feat = Tensor.of_column path_len;
    traffic_feat;
    r1 = { src = r1_src; dst = r1_dst; feat = r1_feat };
    r2 = to_edges !r2_src !r2_dst !r2_feat;
    r3 = to_edges !r3_src !r3_dst !r3_feat;
    access;
    path_commodity;
    path_demand;
    incidence_path = Array.of_list (List.rev !inc_path);
    incidence_link = Array.of_list (List.rev !inc_link);
    link_caps = Array.map (fun li -> links.(li).Link.capacity_mbps) used }

let memory_estimate_bytes t =
  let edge_bytes (e : edges) = (Array.length e.src * 2 * 8) + (e.feat.Tensor.rows * 8) in
  (t.num_sats + t.num_paths + t.num_traffic) * 8
  + edge_bytes t.r1 + edge_bytes t.r2 + edge_bytes t.r3
  + (match t.access with Some a -> edge_bytes a | None -> 0)
  + (Array.length t.incidence_path * 16)
  + (Array.length t.link_caps * 8)
