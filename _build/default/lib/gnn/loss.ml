open Sate_tensor
module A = Sate_nn.Autodiff
module Instance = Sate_te.Instance

type config = {
  lambda_flow : float;
  lambda_balance : float;
  alpha_max : float;
  supervised_weight : float;
}

let default_config =
  { lambda_flow = 1.0;
    lambda_balance = 50.0;
    alpha_max = 2.0;
    supervised_weight = 4.0 }

let compute cfg (g : Te_graph.t) ~pred_ratios ~label_ratios =
  let demand = A.const (Tensor.of_column g.Te_graph.path_demand) in
  (* Predicted rates x_jp = ratio * demand. *)
  let x = A.mul pred_ratios demand in
  let total_flow = A.sum x in
  let total_demand =
    (* Each path carries its commodity's demand; the per-commodity
       demand is the traffic feature times its scale. *)
    Float.max 1.0 (Tensor.sum g.Te_graph.traffic_feat *. 100.0)
  in
  (* Link loads via the (path, link) incidence. *)
  let n_links = Array.length g.Te_graph.link_caps in
  let penalty =
    if n_links = 0 || Array.length g.Te_graph.incidence_path = 0 then A.scalar 0.0
    else begin
      let per_entry = A.gather_rows x g.Te_graph.incidence_path in
      let loads = A.scatter_add_rows per_entry g.Te_graph.incidence_link ~rows:n_links in
      let caps = Tensor.of_column g.Te_graph.link_caps in
      let inv_caps = A.const (Tensor.map (fun c -> 1.0 /. Float.max 1e-9 c) caps) in
      let overflow = A.relu (A.sub loads (A.const caps)) in
      let util = A.mul loads inv_caps in
      let alpha = A.exp (A.clamp_max cfg.alpha_max util) in
      A.sum (A.mul alpha overflow)
    end
  in
  let opt_term =
    A.scale
      (1.0 /. (cfg.lambda_balance *. cfg.lambda_flow *. total_demand))
      (A.add (A.scale (-.cfg.lambda_flow) total_flow) penalty)
  in
  let supervised =
    A.scale cfg.supervised_weight
      (A.mean (A.square (A.sub pred_ratios (A.const label_ratios))))
  in
  A.add supervised opt_term

let label_ratios_of_alloc (inst : Instance.t) alloc =
  let ratios = ref [] in
  Array.iteri
    (fun f rates ->
      let demand = inst.Instance.commodities.(f).Instance.demand_mbps in
      Array.iter
        (fun r -> ratios := (if demand > 0.0 then r /. demand else 0.0) :: !ratios)
        rates)
    alloc;
  Tensor.of_column (Array.of_list (List.rev !ratios))
