(** Indexed min-priority queue over integer keys [0 .. n-1] with
    decrease-key, as needed by Dijkstra/Yen path searches.

    Priorities are floats; each key appears at most once. *)

type t

val create : int -> t
(** [create n] supports keys [0 .. n-1]. *)

val is_empty : t -> bool

val mem : t -> int -> bool
(** Whether a key is currently queued. *)

val insert : t -> int -> float -> unit
(** [insert q k p] adds key [k] with priority [p].  Raises
    [Invalid_argument] if [k] is already queued. *)

val decrease : t -> int -> float -> unit
(** [decrease q k p] lowers the priority of queued key [k] to [p]
    (no-op if [p] is not lower). *)

val insert_or_decrease : t -> int -> float -> unit
(** Insert the key, or lower its priority if already queued. *)

val pop_min : t -> (int * float) option
(** Remove and return the minimum-priority key. *)
