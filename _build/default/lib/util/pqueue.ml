type t = {
  keys : int array; (* heap array of keys *)
  prios : float array; (* prios.(k) = priority of key k *)
  pos : int array; (* pos.(k) = index of k in [keys], or -1 *)
  mutable size : int;
}

let create n =
  { keys = Array.make (max n 1) 0; prios = Array.make (max n 1) 0.0; pos = Array.make (max n 1) (-1); size = 0 }

let is_empty q = q.size = 0

let mem q k = q.pos.(k) >= 0

let swap q i j =
  let ki = q.keys.(i) and kj = q.keys.(j) in
  q.keys.(i) <- kj;
  q.keys.(j) <- ki;
  q.pos.(kj) <- i;
  q.pos.(ki) <- j

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.prios.(q.keys.(i)) < q.prios.(q.keys.(parent)) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && q.prios.(q.keys.(l)) < q.prios.(q.keys.(!smallest)) then smallest := l;
  if r < q.size && q.prios.(q.keys.(r)) < q.prios.(q.keys.(!smallest)) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let insert q k p =
  if mem q k then invalid_arg "Pqueue.insert: key already present";
  q.keys.(q.size) <- k;
  q.pos.(k) <- q.size;
  q.prios.(k) <- p;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let decrease q k p =
  if mem q k && p < q.prios.(k) then begin
    q.prios.(k) <- p;
    sift_up q q.pos.(k)
  end

let insert_or_decrease q k p = if mem q k then decrease q k p else insert q k p

let pop_min q =
  if q.size = 0 then None
  else begin
    let k = q.keys.(0) in
    let p = q.prios.(k) in
    q.size <- q.size - 1;
    q.pos.(k) <- -1;
    if q.size > 0 then begin
      let last = q.keys.(q.size) in
      q.keys.(0) <- last;
      q.pos.(last) <- 0;
      sift_down q 0
    end;
    Some (k, p)
  end
