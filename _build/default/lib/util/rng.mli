(** Deterministic pseudo-random number generation.

    All stochastic components of the library draw from this module so
    that experiments are reproducible from an explicit seed.  The
    generator is SplitMix64 (Steele, Lea & Flood 2014): tiny state,
    excellent statistical quality for simulation purposes, and a
    [split] operation that derives independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val copy : t -> t
(** [copy t] duplicates the state (the copy evolves independently). *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform on \[0, n) — exactly uniform: rejection
    sampling avoids the modulo bias of taking raw bits mod [n].
    Raises [Invalid_argument] if [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform on \[0, x). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform on \[lo, hi). *)

val bool : t -> bool
(** Fair coin flip. *)

val normal : t -> mean:float -> std:float -> float
(** Gaussian sample (Box–Muller). *)

val exponential : t -> rate:float -> float
(** Exponential sample with given rate (mean [1. /. rate]). *)

val poisson : t -> lambda:float -> int
(** Poisson sample.  Uses Knuth's method for small [lambda] and a
    normal approximation above 30 (adequate for flow-arrival counts). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_weighted : t -> float array -> int
(** [sample_weighted t w] draws an index with probability proportional
    to [w.(i)].  Requires some strictly positive weight. *)
