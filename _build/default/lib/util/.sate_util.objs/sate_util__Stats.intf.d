lib/util/stats.mli:
