lib/util/rng.mli:
