lib/util/heap.mli:
