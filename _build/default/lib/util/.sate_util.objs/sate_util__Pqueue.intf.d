lib/util/pqueue.mli:
