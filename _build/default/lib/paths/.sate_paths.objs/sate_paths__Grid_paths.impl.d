lib/paths/grid_paths.ml: Array Dijkstra Hashtbl List Option Path Queue Sate_orbit Sate_topology Yen
