lib/paths/path_db.mli: Path Sate_orbit Sate_topology
