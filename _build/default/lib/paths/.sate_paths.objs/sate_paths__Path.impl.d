lib/paths/path.ml: Array Format Hashtbl List Sate_geo Sate_topology String
