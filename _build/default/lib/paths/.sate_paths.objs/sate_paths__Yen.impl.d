lib/paths/yen.ml: Array Dijkstra Hashtbl List Path Sate_topology Sate_util
