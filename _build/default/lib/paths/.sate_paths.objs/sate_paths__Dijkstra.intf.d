lib/paths/dijkstra.mli: Path Sate_topology
