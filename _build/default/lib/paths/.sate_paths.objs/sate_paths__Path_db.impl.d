lib/paths/path_db.ml: Array Grid_paths Hashtbl List Option Path Sate_orbit Sate_topology
