lib/paths/path.mli: Format Sate_topology
