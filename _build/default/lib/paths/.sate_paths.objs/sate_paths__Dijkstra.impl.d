lib/paths/dijkstra.ml: Array Float List Path Queue Sate_topology Sate_util
