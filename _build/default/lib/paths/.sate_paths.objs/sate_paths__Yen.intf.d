lib/paths/yen.mli: Dijkstra Path Sate_topology
