lib/paths/grid_paths.mli: Path Sate_orbit Sate_topology
