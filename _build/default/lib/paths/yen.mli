(** Yen's k-shortest loopless paths [80].

    The classical polynomial algorithm the paper cites as too slow for
    mega-constellations (Appendix C); kept both as the correctness
    oracle for {!Grid_paths} and as the fallback when the grid
    structure cannot produce enough valid candidates. *)

val k_shortest :
  ?weight:Dijkstra.weight ->
  Sate_topology.Snapshot.t ->
  src:int ->
  dst:int ->
  k:int ->
  Path.t list
(** Up to [k] loopless paths in non-decreasing cost order.  Empty when
    the destination is unreachable. *)
