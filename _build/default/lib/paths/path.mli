(** Network paths: node sequences over a topology snapshot. *)

type t = { nodes : int array }
(** Node ids from source to destination, inclusive. *)

val of_list : int list -> t
(** Validates: at least two nodes, no immediate repetition. *)

val to_list : t -> int list

val source : t -> int

val destination : t -> int

val hops : t -> int
(** Number of links traversed. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val is_loopless : t -> bool
(** No node appears twice. *)

val valid_in : Sate_topology.Snapshot.t -> t -> bool
(** All consecutive node pairs are linked in the snapshot. *)

val length_km : Sate_topology.Snapshot.t -> t -> float
(** Geometric length; raises [Invalid_argument] if a hop is missing. *)

val delay_ms : Sate_topology.Snapshot.t -> t -> float
(** End-to-end propagation delay. *)

val link_indices : Sate_topology.Snapshot.t -> t -> int array
(** Indices into [snapshot.links] of every hop (the Phi_pe relation of
    Appendix A); raises [Invalid_argument] if a hop is missing. *)

val pp : Format.formatter -> t -> unit
