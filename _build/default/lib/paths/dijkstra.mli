(** Shortest paths over a topology snapshot. *)

type weight = Hops  (** Unit cost per link. *) | Km  (** Geometric length. *)

val shortest :
  ?weight:weight ->
  ?banned_nodes:(int -> bool) ->
  ?banned_links:(int * int -> bool) ->
  Sate_topology.Snapshot.t ->
  src:int ->
  dst:int ->
  Path.t option
(** Dijkstra from [src] to [dst]; [banned_nodes]/[banned_links]
    support Yen's spur computation.  Default weight is [Hops]. *)

val distances :
  ?weight:weight -> Sate_topology.Snapshot.t -> src:int -> float array
(** One-to-all distances ([infinity] when unreachable). *)

val bfs_nearest :
  Sate_topology.Snapshot.t ->
  src:int ->
  follow:(Sate_topology.Link.t -> bool) ->
  accept:(int -> bool) ->
  (int * int) option
(** Breadth-first search from [src] along links satisfying [follow];
    returns the first node satisfying [accept] and its hop distance
    (the recursive nearest-crossing search of Appendix C). *)
