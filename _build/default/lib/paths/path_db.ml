module Constellation = Sate_orbit.Constellation
module Snapshot = Sate_topology.Snapshot

type t = {
  constellation : Constellation.t;
  k : int;
  table : (int * int, Path.t list) Hashtbl.t;
}

let k t = t.k

let pairs t =
  let arr = Array.make (Hashtbl.length t.table) (0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun pair _ ->
      arr.(!i) <- pair;
      incr i)
    t.table;
  Array.sort compare arr;
  arr

let paths t ~src ~dst =
  Option.value ~default:[] (Hashtbl.find_opt t.table (src, dst))

let compute constellation snap ~pairs ~k =
  let table = Hashtbl.create (List.length pairs) in
  List.iter
    (fun (src, dst) ->
      if not (Hashtbl.mem table (src, dst)) then
        Hashtbl.replace table (src, dst)
          (Grid_paths.k_shortest constellation snap ~src ~dst ~k))
    pairs;
  { constellation; k; table }

let update t snap =
  let table = Hashtbl.create (Hashtbl.length t.table) in
  let recomputed = ref 0 in
  Hashtbl.iter
    (fun (src, dst) paths ->
      let still_valid = List.filter (Path.valid_in snap) paths in
      if List.length still_valid = List.length paths && paths <> [] then
        Hashtbl.replace table (src, dst) paths
      else begin
        incr recomputed;
        Hashtbl.replace table (src, dst)
          (Grid_paths.k_shortest t.constellation snap ~src ~dst ~k:t.k)
      end)
    t.table;
  ({ t with table }, !recomputed)

let add_pairs t snap new_pairs =
  let table = Hashtbl.copy t.table in
  List.iter
    (fun (src, dst) ->
      if not (Hashtbl.mem table (src, dst)) then
        Hashtbl.replace table (src, dst)
          (Grid_paths.k_shortest t.constellation snap ~src ~dst ~k:t.k))
    new_pairs;
  { t with table }

let stats t =
  let total = Hashtbl.fold (fun _ ps acc -> acc + List.length ps) t.table 0 in
  (Hashtbl.length t.table, total)
