(** Fast k-shortest paths exploiting the multi-shell grid structure
    (Appendix C).

    Within a shell, satellites form a [planes x sats_per_plane] torus;
    minimum-hop paths are monotone staircases and there are
    [C(dx + dy, dx)] of them, enumerable without search.  Across
    shells, the algorithm finds the nearest satellite with a
    cross-shell link (or a relay whose footprint reaches the target
    shell), crosses there, and enumerates staircases on the target
    shell.  Candidates invalidated by deactivated inter-orbit links
    are filtered against the snapshot; if fewer than [k] survive, the
    result is topped up with Yen's algorithm so callers always get
    loopless valid paths when connectivity exists. *)

val intra_shell_candidates :
  Sate_orbit.Constellation.t ->
  src:int ->
  dst:int ->
  limit:int ->
  Path.t list
(** Staircase minimum-hop candidates between two satellites of the
    same shell, ignoring link liveness (up to [limit]).  Raises
    [Invalid_argument] if the satellites are in different shells. *)

val k_shortest :
  Sate_orbit.Constellation.t ->
  Sate_topology.Snapshot.t ->
  src:int ->
  dst:int ->
  k:int ->
  Path.t list
(** Up to [k] valid loopless paths between two satellites (same or
    different shells, laser or relay cross-shell regimes).  Empty only
    when the pair is disconnected. *)
