(** Preconfigured-path store with incremental maintenance.

    The TE workflow precomputes k candidate paths per
    source-destination pair (Sec. 2.2 step 3).  Rather than
    recomputing every pair each interval, {!update} revalidates the
    stored paths against the new snapshot and recomputes only pairs
    that lost a path — the paper reports under 2% of paths change per
    second (Sec. 4, Appendix C). *)

type t

val k : t -> int

val pairs : t -> (int * int) array
(** The tracked source-destination pairs. *)

val paths : t -> src:int -> dst:int -> Path.t list
(** Stored candidate paths for a pair (possibly fewer than [k];
    empty for untracked or disconnected pairs). *)

val compute :
  Sate_orbit.Constellation.t ->
  Sate_topology.Snapshot.t ->
  pairs:(int * int) list ->
  k:int ->
  t
(** Populate the store for the given pairs using {!Grid_paths}. *)

val update : t -> Sate_topology.Snapshot.t -> t * int
(** Revalidate against a new snapshot; recompute pairs with invalid
    paths.  Returns the new store and the number of pairs
    recomputed. *)

val add_pairs : t -> Sate_topology.Snapshot.t -> (int * int) list -> t
(** Track additional pairs (new traffic demands), computing their
    paths against the given snapshot. *)

val stats : t -> int * int
(** [(num_pairs, total_paths)] currently stored. *)
