module Snapshot = Sate_topology.Snapshot
module Geo = Sate_geo.Geo

type t = { nodes : int array }

let of_list nodes =
  let arr = Array.of_list nodes in
  if Array.length arr < 2 then invalid_arg "Path.of_list: need at least two nodes";
  for i = 0 to Array.length arr - 2 do
    if arr.(i) = arr.(i + 1) then invalid_arg "Path.of_list: repeated node"
  done;
  { nodes = arr }

let to_list t = Array.to_list t.nodes

let source t = t.nodes.(0)

let destination t = t.nodes.(Array.length t.nodes - 1)

let hops t = Array.length t.nodes - 1

let equal a b = a.nodes = b.nodes

let compare a b = compare a.nodes b.nodes

let is_loopless t =
  let seen = Hashtbl.create (Array.length t.nodes) in
  Array.for_all
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    t.nodes

let valid_in snap t =
  let ok = ref true in
  for i = 0 to Array.length t.nodes - 2 do
    if !ok && Snapshot.find_link snap t.nodes.(i) t.nodes.(i + 1) = None then
      ok := false
  done;
  !ok

let length_km snap t =
  let total = ref 0.0 in
  for i = 0 to Array.length t.nodes - 2 do
    match Snapshot.find_link snap t.nodes.(i) t.nodes.(i + 1) with
    | Some l -> total := !total +. l.Sate_topology.Link.length_km
    | None -> invalid_arg "Path.length_km: missing hop"
  done;
  !total

let delay_ms snap t = length_km snap t /. Geo.speed_of_light_km_s *. 1000.0

let link_indices snap t =
  Array.init (Array.length t.nodes - 1) (fun i ->
      let u = t.nodes.(i) and v = t.nodes.(i + 1) in
      match
        List.find_opt (fun (nbr, _) -> nbr = v) (Snapshot.neighbors snap u)
      with
      | Some (_, li) -> li
      | None -> invalid_arg "Path.link_indices: missing hop")

let pp fmt t =
  Format.fprintf fmt "[%s]"
    (String.concat " -> " (Array.to_list (Array.map string_of_int t.nodes)))
