module Constellation = Sate_orbit.Constellation
module Shell = Sate_orbit.Shell
module Snapshot = Sate_topology.Snapshot
module Link = Sate_topology.Link

let shell_of c node =
  if node < Constellation.size c then (Constellation.coord_of_id c node).Constellation.shell
  else -1 (* ground relay *)

(* Wrapped directed distance on a ring of size n: steps and unit
   direction with the fewer hops (ties resolved forward). *)
let ring_steps n a b =
  if n <= 1 then (0, 1)
  else
    let fwd = ((b - a) mod n + n) mod n in
    let bwd = n - fwd in
    if fwd <= bwd then (fwd, 1) else (bwd, -1)

let intra_shell_candidates c ~src ~dst ~limit =
  let sc = Constellation.coord_of_id c src in
  let dc = Constellation.coord_of_id c dst in
  if sc.Constellation.shell <> dc.Constellation.shell then
    invalid_arg "Grid_paths.intra_shell_candidates: different shells";
  let sh = (Constellation.shells c).(sc.Constellation.shell) in
  let planes = sh.Shell.planes and per = sh.Shell.sats_per_plane in
  let steps_x, sign_x = ring_steps planes sc.Constellation.plane dc.Constellation.plane in
  let steps_y, sign_y = ring_steps per sc.Constellation.slot dc.Constellation.slot in
  let id plane slot =
    Constellation.id_of_coord c
      { Constellation.shell = sc.Constellation.shell;
        plane = ((plane mod planes) + planes) mod planes;
        slot = ((slot mod per) + per) mod per }
  in
  let results = ref [] and count = ref 0 in
  (* DFS over interleavings of plane moves (x) and slot moves (y). *)
  let rec go plane slot rx ry acc =
    if !count < limit then begin
      if rx = 0 && ry = 0 then begin
        results := Path.of_list (List.rev acc) :: !results;
        incr count
      end
      else begin
        if rx > 0 then begin
          let plane' = plane + sign_x in
          go plane' slot (rx - 1) ry (id plane' slot :: acc)
        end;
        if ry > 0 then begin
          let slot' = slot + sign_y in
          go plane slot' rx (ry - 1) (id plane slot' :: acc)
        end
      end
    end
  in
  if steps_x = 0 && steps_y = 0 then []
  else begin
    go sc.Constellation.plane sc.Constellation.slot steps_x steps_y
      [ id sc.Constellation.plane sc.Constellation.slot ];
    List.rev !results
  end

let same_shell_link (l : Link.t) =
  match l.Link.kind with
  | Link.Intra_orbit | Link.Inter_orbit -> true
  | Link.Cross_shell_laser | Link.Relay -> false

(* Shortest same-shell hop path via BFS with parents; returns node
   list src..dst or None. *)
let bfs_intra_path snap src dst =
  if src = dst then Some [ src ]
  else begin
    let n = Snapshot.num_nodes snap in
    let parent = Array.make n (-2) in
    parent.(src) <- -1;
    let q = Queue.create () in
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.take q in
      List.iter
        (fun (v, li) ->
          if parent.(v) = -2 && same_shell_link snap.Snapshot.links.(li) then begin
            parent.(v) <- u;
            if v = dst then found := true else Queue.add v q
          end)
        (Snapshot.neighbors snap u)
    done;
    if not !found then None
    else begin
      let rec build acc u = if u = src then src :: acc else build (u :: acc) parent.(u) in
      Some (build [] dst)
    end
  end

(* Nearest node of the source shell holding a crossing toward
   [target_shell]: a direct cross-shell laser, or a relay that also
   serves the target shell.  Returns (alpha, crossing) where crossing
   is the node list alpha..gamma entering the target shell. *)
let find_crossing c snap ~from ~target_shell =
  let crossing_of node =
    (* Direct laser into the target shell. *)
    let laser =
      List.find_map
        (fun (v, li) ->
          match snap.Snapshot.links.(li).Link.kind with
          | Link.Cross_shell_laser when shell_of c v = target_shell ->
              Some [ node; v ]
          | Link.Cross_shell_laser | Link.Intra_orbit | Link.Inter_orbit
          | Link.Relay ->
              None)
        (Snapshot.neighbors snap node)
    in
    match laser with
    | Some _ as r -> r
    | None ->
        (* Bent pipe: relay neighbour with a foot in the target shell. *)
        List.find_map
          (fun (relay, li) ->
            match snap.Snapshot.links.(li).Link.kind with
            | Link.Relay ->
                List.find_map
                  (fun (gamma, _) ->
                    if gamma <> node && shell_of c gamma = target_shell then
                      Some [ node; relay; gamma ]
                    else None)
                  (Snapshot.neighbors snap relay)
            | Link.Intra_orbit | Link.Inter_orbit | Link.Cross_shell_laser ->
                None)
          (Snapshot.neighbors snap node)
  in
  match
    Dijkstra.bfs_nearest snap ~src:from
      ~follow:same_shell_link
      ~accept:(fun node -> crossing_of node <> None)
  with
  | None -> None
  | Some (alpha, _) -> Option.map (fun cr -> (alpha, cr)) (crossing_of alpha)

let dedup_paths paths =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (p : Path.t) ->
      if Hashtbl.mem seen p.Path.nodes then false
      else begin
        Hashtbl.replace seen p.Path.nodes ();
        true
      end)
    paths

(* Staircase candidates valid in the snapshot, same shell. *)
let valid_intra c snap ~src ~dst ~k =
  if src = dst then []
  else
    intra_shell_candidates c ~src ~dst ~limit:(max 64 (k * 16))
    |> List.filter (Path.valid_in snap)
    |> fun l -> List.filteri (fun i _ -> i < k) l

let concat_prefix prefix (tail : Path.t) =
  (* prefix ends at the node that starts tail. *)
  match prefix with
  | [] -> Some tail
  | _ ->
      let nodes = Array.of_list (prefix @ List.tl (Path.to_list tail)) in
      let p = { Path.nodes } in
      if Path.is_loopless p then Some p else None

let top_up_with_yen snap ~src ~dst ~k found =
  if List.length found >= k then found
  else
    let extra = Yen.k_shortest snap ~src ~dst ~k in
    dedup_paths (found @ extra) |> fun l -> List.filteri (fun i _ -> i < k) l

let k_shortest c snap ~src ~dst ~k =
  if src = dst || k <= 0 then []
  else if src >= Constellation.size c || dst >= Constellation.size c then
    (* Relay endpoints: no grid structure, fall back to Yen. *)
    Yen.k_shortest snap ~src ~dst ~k
  else begin
    let s_shell = shell_of c src and d_shell = shell_of c dst in
    let found =
      if s_shell = d_shell then valid_intra c snap ~src ~dst ~k
      else begin
        (* Walk shell by shell toward the destination shell, crossing
           at the nearest available crossing each time.  Invariant:
           [prefix] is the node list from [src] ending at [current]. *)
        let rec walk prefix current current_shell =
          if current_shell = d_shell then
            if current = dst then
              if List.length prefix >= 2 then [ Path.of_list prefix ] else []
            else
              let tails = valid_intra c snap ~src:current ~dst ~k in
              List.filter_map (fun tail -> concat_prefix prefix tail) tails
          else
            let target_shell =
              if d_shell > current_shell then current_shell + 1
              else current_shell - 1
            in
            match find_crossing c snap ~from:current ~target_shell with
            | None -> []
            | Some (alpha, crossing) -> (
                match bfs_intra_path snap current alpha with
                | None -> []
                | Some to_alpha ->
                    (* prefix ends at current = head of to_alpha;
                       to_alpha ends at alpha = head of crossing. *)
                    let gamma = List.nth crossing (List.length crossing - 1) in
                    let joined =
                      prefix @ List.tl to_alpha @ List.tl crossing
                    in
                    walk joined gamma target_shell)
        in
        walk [ src ] src s_shell |> dedup_paths
        |> List.filter (fun p -> Path.is_loopless p && Path.valid_in snap p)
        |> fun l -> List.filteri (fun i _ -> i < k) l
      end
    in
    top_up_with_yen snap ~src ~dst ~k found
  end
