(** Poisson flow-arrival traffic generator (Section 4, Appendix G).

    New flows arrive as a Poisson process of intensity [lambda] flows
    per second.  Each flow is a service class (Table 2), a duration,
    and two endpoints: user-to-user, or gateway-to-user for Internet
    access.  Endpoint locations are drawn from the population raster
    (Eq. 8), so the traffic intensity between grid cells alpha, beta
    is lambda * p_alpha * p_beta as in the paper.

    Calling {!advance} moves simulated time forward, adding arrivals
    and expiring finished flows; {!demand_at} aggregates the active
    flows into a sparse traffic matrix against a topology snapshot by
    attaching every endpoint to its nearest satellite. *)

type config = {
  seed : int;
  gateway_count : int;  (** Paper: 1,000 gateways. *)
  smoothing : float;  (** Gamma of Eq. 8. *)
  gateway_flow_fraction : float;
      (** Probability that a new flow is gateway-to-user. *)
  uplink_mbps : float;  (** Per-connection uplink capacity (50). *)
  downlink_mbps : float;  (** Per-connection downlink capacity (50). *)
}

val default_config : config

type flow = {
  id : int;
  cls : Flow_class.t;
  demand_mbps : float;
  src_lat : float;
  src_lon : float;
  dst_lat : float;
  dst_lon : float;
  start_s : float;
  end_s : float;
  via_gateway : bool;
}

type t

val create : ?config:config -> lambda:float -> unit -> t
(** Fresh generator with no active flows at time 0. *)

val config : t -> config

val lambda : t -> float

val set_lambda : t -> float -> unit
(** Change the arrival intensity (traffic-load sweeps). *)

val advance : t -> to_s:float -> unit
(** Simulate arrivals and departures up to [to_s] (non-decreasing). *)

val active_flows : t -> flow list

val active_count : t -> int

val demand_at :
  t -> Sate_topology.Snapshot.t -> Demand.t * float array * float array
(** Aggregate active flows into a sparse demand matrix by attaching
    endpoints to nearest satellites, plus per-satellite uplink and
    downlink capacities (per-connection capacity times the number of
    attached connections).  Flow demands are clamped to the
    per-connection access capacity. *)
