lib/traffic/estimator.ml: Demand Flow_class List
