lib/traffic/generator.ml: Array Demand Float Flow_class Hashtbl Sate_geo Sate_topology Sate_util
