lib/traffic/flow_class.mli: Sate_util
