lib/traffic/estimator.mli: Demand Flow_class
