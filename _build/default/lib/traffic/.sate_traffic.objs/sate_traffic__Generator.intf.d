lib/traffic/generator.mli: Demand Flow_class Sate_topology
