lib/traffic/demand.mli:
