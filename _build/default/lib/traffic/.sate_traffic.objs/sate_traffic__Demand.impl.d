lib/traffic/demand.ml: Array Hashtbl List Option
