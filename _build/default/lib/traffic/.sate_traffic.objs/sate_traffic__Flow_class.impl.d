lib/traffic/flow_class.ml: Sate_util
