(** Bandwidth-demand estimation from connection metadata (Appendix D).

    The control centre never sees instantaneous rates; it infers each
    flow's bandwidth requirement at connection-establishment time:

    - {e persistent} flows (VoIP, video, file transfer) are estimated
      from their service class and standard (G.711 voice is 64 Kbps,
      1080p video 8 Mbps, ...);
    - {e background} flows with a deadline are estimated as
      remaining volume / remaining time;
    - {e bursty} flows preempt background bandwidth and are small
      enough to be accounted implicitly (estimate 0, headroom-served).

    The estimator deliberately returns the {e authorized} demand, not
    ground truth: TE inputs in the paper are estimates, and the
    evaluation measures satisfaction of those estimates. *)

type flow_descriptor =
  | Persistent of Flow_class.t
      (** Service class negotiated at connection setup. *)
  | Background of { volume_mb : float; deadline_s : float }
      (** Bulk transfer with a deadline, e.g. telemetry offload. *)
  | Bursty
      (** Short opportunistic bursts (chat images, ...). *)

val estimate_mbps : now_s:float -> start_s:float -> flow_descriptor -> float
(** Estimated bandwidth demand of one flow at time [now_s]:
    class rate for persistent flows; remaining-volume / remaining-time
    for background flows (0 once the deadline passed); 0 for bursty
    flows. *)

val aggregate :
  now_s:float ->
  (int * int * float * flow_descriptor) list ->
  num_sats:int ->
  Demand.t
(** [aggregate ~now_s flows ~num_sats] folds per-flow estimates into a
    sparse traffic matrix; each element of [flows] is
    [(src_sat, dst_sat, start_s, descriptor)]. *)
