type flow_descriptor =
  | Persistent of Flow_class.t
  | Background of { volume_mb : float; deadline_s : float }
  | Bursty

let estimate_mbps ~now_s ~start_s = function
  | Persistent cls -> Flow_class.demand_mbps cls
  | Background { volume_mb; deadline_s } ->
      let remaining_s = (start_s +. deadline_s) -. now_s in
      if remaining_s <= 0.0 then 0.0
      else
        (* Volume is in megabytes; demand in megabits per second. *)
        volume_mb *. 8.0 /. remaining_s
  | Bursty -> 0.0

let aggregate ~now_s flows ~num_sats =
  let assoc =
    List.map
      (fun (src, dst, start_s, desc) ->
        (src, dst, estimate_mbps ~now_s ~start_s desc))
      flows
  in
  Demand.of_assoc ~num_sats assoc
