type entry = { src : int; dst : int; demand_mbps : float }

type t = { num_sats : int; entries : entry array }

let of_assoc ~num_sats assoc =
  let table = Hashtbl.create (List.length assoc) in
  List.iter
    (fun (src, dst, d) ->
      if src <> dst && d > 0.0 then begin
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt table (src, dst)) in
        Hashtbl.replace table (src, dst) (prev +. d)
      end)
    assoc;
  let entries =
    Hashtbl.fold (fun (src, dst) d acc -> { src; dst; demand_mbps = d } :: acc) table []
    |> List.sort (fun a b -> compare (a.src, a.dst) (b.src, b.dst))
    |> Array.of_list
  in
  { num_sats; entries }

let total_demand t =
  Array.fold_left (fun acc e -> acc +. e.demand_mbps) 0.0 t.entries

let num_entries t = Array.length t.entries

let dense_volume_bytes t = t.num_sats * t.num_sats * 8

let sparse_volume_bytes t = Array.length t.entries * (8 + 4 + 4)

let find t ~src ~dst =
  (* Entries are few; linear scan is fine for the sizes used in tests,
     but binary search keeps evaluation over Starlink matrices fast. *)
  let n = Array.length t.entries in
  let rec search lo hi =
    if lo >= hi then 0.0
    else
      let mid = (lo + hi) / 2 in
      let e = t.entries.(mid) in
      let c = compare (e.src, e.dst) (src, dst) in
      if c = 0 then e.demand_mbps
      else if c < 0 then search (mid + 1) hi
      else search lo mid
  in
  search 0 n

let active_satellites t =
  let set = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      Hashtbl.replace set e.src ();
      Hashtbl.replace set e.dst ())
    t.entries;
  let ids = Hashtbl.fold (fun k () acc -> k :: acc) set [] in
  let arr = Array.of_list ids in
  Array.sort compare arr;
  arr
