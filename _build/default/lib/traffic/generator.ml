module Rng = Sate_util.Rng
module Heap = Sate_util.Heap
module Geo = Sate_geo.Geo
module Population = Sate_geo.Population
module Snapshot = Sate_topology.Snapshot
module Spatial_index = Sate_topology.Spatial_index

type config = {
  seed : int;
  gateway_count : int;
  smoothing : float;
  gateway_flow_fraction : float;
  uplink_mbps : float;
  downlink_mbps : float;
}

let default_config =
  { seed = 7;
    gateway_count = 1000;
    smoothing = 2.0;
    gateway_flow_fraction = 0.4;
    uplink_mbps = 50.0;
    downlink_mbps = 50.0 }

type flow = {
  id : int;
  cls : Flow_class.t;
  demand_mbps : float;
  src_lat : float;
  src_lon : float;
  dst_lat : float;
  dst_lon : float;
  start_s : float;
  end_s : float;
  via_gateway : bool;
}

type t = {
  config : config;
  mutable lambda : float;
  rng : Rng.t;
  user_sampler : Population.sampler;
  gateways : (float * float) array;
  mutable now_s : float;
  mutable next_id : int;
  active : (int, flow) Hashtbl.t;
  expiries : int Heap.t; (* flow ids keyed by end time *)
}

let create ?(config = default_config) ~lambda () =
  let rng = Rng.create config.seed in
  let pop = Population.synthetic ~seed:config.seed in
  let user_sampler = Population.make_sampler pop ~smoothing:config.smoothing ~land_only:false in
  let gateway_sampler = Population.make_sampler pop ~smoothing:config.smoothing ~land_only:true in
  let gateways =
    Array.init config.gateway_count (fun _ -> Population.sample gateway_sampler rng)
  in
  { config;
    lambda;
    rng;
    user_sampler;
    gateways;
    now_s = 0.0;
    next_id = 0;
    active = Hashtbl.create 1024;
    expiries = Heap.create () }

let config t = t.config

let lambda t = t.lambda

let set_lambda t l = t.lambda <- l

let new_flow t ~start_s =
  let cls = Flow_class.sample_class t.rng in
  let via_gateway = Rng.float t.rng 1.0 < t.config.gateway_flow_fraction in
  let src_lat, src_lon =
    if via_gateway then Rng.pick t.rng t.gateways
    else Population.sample t.user_sampler t.rng
  in
  let dst_lat, dst_lon = Population.sample t.user_sampler t.rng in
  let duration = Flow_class.sample_duration_s cls t.rng in
  let id = t.next_id in
  t.next_id <- id + 1;
  { id;
    cls;
    demand_mbps = Flow_class.demand_mbps cls;
    src_lat;
    src_lon;
    dst_lat;
    dst_lon;
    start_s;
    end_s = start_s +. duration;
    via_gateway }

let expire t ~now =
  let rec loop () =
    match Heap.peek t.expiries with
    | Some (end_s, id) when end_s <= now ->
        ignore (Heap.pop t.expiries);
        Hashtbl.remove t.active id;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let advance t ~to_s =
  if to_s < t.now_s then invalid_arg "Generator.advance: time must be non-decreasing";
  let dt = to_s -. t.now_s in
  if dt > 0.0 then begin
    let n = Rng.poisson t.rng ~lambda:(t.lambda *. dt) in
    for _ = 1 to n do
      let start_s = t.now_s +. Rng.float t.rng dt in
      let f = new_flow t ~start_s in
      if f.end_s > to_s then begin
        Hashtbl.replace t.active f.id f;
        Heap.push t.expiries f.end_s f.id
      end
    done;
    t.now_s <- to_s;
    expire t ~now:to_s
  end

let active_flows t = Hashtbl.fold (fun _ f acc -> f :: acc) t.active []

let active_count t = Hashtbl.length t.active

let demand_at t snap =
  let num_sats = snap.Snapshot.num_sats in
  let index = Spatial_index.build snap.Snapshot.sat_positions in
  let attach lat lon =
    let p = Geo.of_lat_lon ~lat_deg:lat ~lon_deg:lon ~alt_km:0.0 in
    match Spatial_index.nearest index p ~max_km:5000.0 with
    | Some (sat, _) -> sat
    | None -> invalid_arg "Generator.demand_at: no satellite within 5000 km"
  in
  let up_count = Array.make num_sats 0 in
  let down_count = Array.make num_sats 0 in
  let assoc =
    Hashtbl.fold
      (fun _ f acc ->
        let src = attach f.src_lat f.src_lon in
        let dst = attach f.dst_lat f.dst_lon in
        if src = dst then acc
        else begin
          up_count.(src) <- up_count.(src) + 1;
          down_count.(dst) <- down_count.(dst) + 1;
          let demand =
            Float.min f.demand_mbps (Float.min t.config.uplink_mbps t.config.downlink_mbps)
          in
          (src, dst, demand) :: acc
        end)
      t.active []
  in
  let demand = Demand.of_assoc ~num_sats assoc in
  let up_caps =
    Array.map (fun c -> float_of_int c *. t.config.uplink_mbps) up_count
  in
  let down_caps =
    Array.map (fun c -> float_of_int c *. t.config.downlink_mbps) down_count
  in
  (demand, up_caps, down_caps)
