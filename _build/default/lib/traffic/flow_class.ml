module Rng = Sate_util.Rng

type t = Voice | Video | File_transfer

let all = [ Voice; Video; File_transfer ]

let to_string = function
  | Voice -> "voice"
  | Video -> "video"
  | File_transfer -> "file-transfer"

let demand_mbps = function
  | Voice -> 0.064
  | Video -> 8.0
  | File_transfer -> 50.0

let duration_range_s = function
  | Voice -> (60.0, 600.0)
  | Video -> (300.0, 1800.0)
  | File_transfer -> (1560.0, 7800.0)

let sample_duration_s t rng =
  let lo, hi = duration_range_s t in
  Rng.uniform rng lo hi

let sample_class rng =
  let u = Rng.float rng 1.0 in
  if u < 0.6 then Voice else if u < 0.9 then Video else File_transfer
