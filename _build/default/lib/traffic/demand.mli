(** Aggregated traffic demands between satellite pairs.

    A traffic matrix entry is the total authorised demand between a
    source and destination satellite (Sec. 2.2 step 1).  Matrices for
    mega-constellations are overwhelmingly sparse — most satellites
    fly over oceans or deserts — so the sparse representation below
    doubles as the paper's traffic pruning (§3.4): only non-zero
    entries exist. *)

type entry = { src : int; dst : int; demand_mbps : float }

type t = {
  num_sats : int;
  entries : entry array;  (** Non-zero entries, unordered pairs kept directed. *)
}

val of_assoc : num_sats:int -> (int * int * float) list -> t
(** Aggregate duplicate (src, dst) pairs; drops zero/negative demands
    and self-pairs. *)

val total_demand : t -> float
(** Sum of all entries, Mbps. *)

val num_entries : t -> int

val dense_volume_bytes : t -> int
(** Size of the dense [num_sats x num_sats] float matrix a DNN-based
    method must materialise (Table 1 "original"). *)

val sparse_volume_bytes : t -> int
(** Size of the pruned representation: 8-byte demand plus two 4-byte
    indices per non-zero entry (Table 1 "pruned"). *)

val find : t -> src:int -> dst:int -> float
(** Demand of a pair, 0 when absent. *)

val active_satellites : t -> int array
(** Sorted ids of satellites appearing in any entry. *)
