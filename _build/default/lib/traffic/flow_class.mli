(** Traffic service classes (Table 2).

    | class         | demand  | duration        |
    |---------------|---------|-----------------|
    | Voice         | 64 Kbps | 1 - 10 min      |
    | Video         | 8 Mbps  | 5 - 30 min      |
    | File transfer | 50 Mbps | 26 - 130 min    |

    Voice follows G.711; video is typical 1080p; file-transfer
    durations correspond to 10 - 50 GB at 50 Mbps. *)

type t = Voice | Video | File_transfer

val all : t list

val to_string : t -> string

val demand_mbps : t -> float
(** Nominal bandwidth demand. *)

val duration_range_s : t -> float * float
(** Inclusive (min, max) flow duration in seconds. *)

val sample_duration_s : t -> Sate_util.Rng.t -> float
(** Uniform draw from {!duration_range_s}. *)

val sample_class : Sate_util.Rng.t -> t
(** Draw a class from the default mixture (voice-heavy, file-light:
    60% voice, 30% video, 10% file transfer), reflecting that most
    satellite flows are small interactive sessions. *)
