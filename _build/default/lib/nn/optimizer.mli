(** Adam optimizer (Kingma & Ba) with gradient clipping. *)

type t

val adam :
  ?lr:float ->
  ?beta1:float ->
  ?beta2:float ->
  ?eps:float ->
  ?clip_norm:float ->
  Autodiff.t list ->
  t
(** Track the given parameters.  Defaults: lr 1e-3, beta1 0.9, beta2
    0.999, eps 1e-8, global-norm clipping at 5.0. *)

val step : t -> unit
(** Apply one update from the accumulated gradients, then zero them. *)

val zero_grads : t -> unit

val set_lr : t -> float -> unit

val lr : t -> float
