lib/nn/autodiff.mli: Sate_tensor Tensor
