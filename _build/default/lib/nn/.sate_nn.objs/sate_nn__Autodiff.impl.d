lib/nn/autodiff.ml: Array Float Hashtbl List Sate_tensor Stdlib Tensor
