lib/nn/optimizer.ml: Array Autodiff List Sate_tensor Tensor
