lib/nn/optimizer.mli: Autodiff
