lib/nn/layers.mli: Autodiff Sate_tensor Sate_util Tensor
