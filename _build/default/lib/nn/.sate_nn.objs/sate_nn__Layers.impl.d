lib/nn/layers.ml: Array Autodiff List Sate_tensor Sate_util Tensor
