(** Trainable layers: linear maps and multi-layer perceptrons. *)

open Sate_tensor

type linear = { w : Autodiff.t; b : Autodiff.t }
(** Affine map [x -> x W + b] with [W : in x out], [b : 1 x out]. *)

val linear : Sate_util.Rng.t -> in_dim:int -> out_dim:int -> linear
(** Glorot-initialised weights, zero bias. *)

val forward_linear : linear -> Autodiff.t -> Autodiff.t

val linear_params : linear -> Autodiff.t list

type mlp
(** Stack of linear layers with LeakyReLU between (none after the
    last layer — the decoder's output is squashed by the caller). *)

val mlp : Sate_util.Rng.t -> dims:int list -> mlp
(** [dims] = [[in; hidden...; out]]; needs at least two entries. *)

val forward_mlp : mlp -> Autodiff.t -> Autodiff.t

val mlp_params : mlp -> Autodiff.t list

val num_parameters : Autodiff.t list -> int

val dump_params : Autodiff.t list -> float array
(** Flatten parameter values (save). *)

val load_params : Autodiff.t list -> float array -> unit
(** Restore values produced by {!dump_params} into parameters of the
    same shapes (in-place). *)

val tensor_of : Autodiff.t -> Tensor.t
(** Current value of a node (alias for [.value]). *)
