(** Reverse-mode automatic differentiation over {!Sate_tensor.Tensor}.

    A computation builds a DAG of value nodes; {!backward} runs the
    chain rule from a scalar loss back to every reachable leaf.  The
    operation set is exactly what attention message passing and the
    SaTE loss (Appendix B) require — including row gather/scatter and
    per-segment softmax with their adjoints. *)

open Sate_tensor

type t = {
  id : int;
  value : Tensor.t;
  mutable grad : Tensor.t;
  mutable back : unit -> unit;
  parents : t list;
}

val leaf : Tensor.t -> t
(** Parameter or input node (no parents). *)

val const : Tensor.t -> t
(** Alias of {!leaf}; constants simply never get optimizer updates. *)

val shape : t -> int * int

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val matmul : t -> t -> t
val square : t -> t

(** {1 Nonlinearities} *)

val leaky_relu : ?alpha:float -> t -> t
(** Default negative slope 0.2 (GAT convention). *)

val relu : t -> t
val sigmoid : t -> t
val exp : t -> t

val clamp_max : float -> t -> t
(** Pass-through below the bound, constant above (zero gradient). *)

(** {1 Structure} *)

val gather_rows : t -> int array -> t
val scatter_add_rows : t -> int array -> rows:int -> t
val concat_cols : t list -> t
val add_rowvec : t -> t -> t
val col_mul : t -> t -> t
val row_sums : t -> t

(** {1 Reductions} *)

val sum : t -> t
(** [1 x 1] total. *)

val mean : t -> t

(** {1 Attention} *)

val segment_softmax : t -> int array -> t
(** Softmax over groups of equal segment id ([m x 1] scores).
    Raises [Invalid_argument] on a negative segment id. *)

(** {1 Scalar helpers} *)

val scalar : float -> t
(** [1 x 1] constant. *)

val scalar_value : t -> float
(** Value of a [1 x 1] node. *)

val div_scalar : t -> t -> t
(** [div_scalar a s] divides every element of [a] by the [1 x 1]
    node [s] (gradients flow to both). *)

(** {1 Backward pass} *)

val backward : t -> unit
(** Seed the gradient of the (scalar) root with 1 and propagate.
    Gradients accumulate into [grad]; callers must zero parameter
    gradients between steps (the optimizer does). *)
