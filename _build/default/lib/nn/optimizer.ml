open Sate_tensor

type t = {
  params : Autodiff.t list;
  m : Tensor.t list;
  v : Tensor.t list;
  mutable lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
  clip_norm : float;
  mutable step_count : int;
}

let adam ?(lr = 1e-3) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8)
    ?(clip_norm = 5.0) params =
  let zero_like (p : Autodiff.t) =
    Tensor.create p.Autodiff.value.Tensor.rows p.Autodiff.value.Tensor.cols
  in
  { params;
    m = List.map zero_like params;
    v = List.map zero_like params;
    lr;
    beta1;
    beta2;
    eps;
    clip_norm;
    step_count = 0 }

let zero_grads t =
  List.iter
    (fun (p : Autodiff.t) ->
      p.Autodiff.grad <-
        Tensor.create p.Autodiff.value.Tensor.rows p.Autodiff.value.Tensor.cols)
    t.params

let step t =
  t.step_count <- t.step_count + 1;
  (* Global-norm clipping across all parameters. *)
  let total_sq =
    List.fold_left
      (fun acc (p : Autodiff.t) ->
        let f = Tensor.frobenius p.Autodiff.grad in
        acc +. (f *. f))
      0.0 t.params
  in
  let norm = sqrt total_sq in
  let clip = if norm > t.clip_norm then t.clip_norm /. norm else 1.0 in
  let bc1 = 1.0 -. (t.beta1 ** float_of_int t.step_count) in
  let bc2 = 1.0 -. (t.beta2 ** float_of_int t.step_count) in
  List.iter2
    (fun (p : Autodiff.t) (m, v) ->
      let g = p.Autodiff.grad.Tensor.data in
      let pd = p.Autodiff.value.Tensor.data in
      let md = m.Tensor.data and vd = v.Tensor.data in
      for i = 0 to Array.length pd - 1 do
        let gi = g.(i) *. clip in
        md.(i) <- (t.beta1 *. md.(i)) +. ((1.0 -. t.beta1) *. gi);
        vd.(i) <- (t.beta2 *. vd.(i)) +. ((1.0 -. t.beta2) *. gi *. gi);
        let mhat = md.(i) /. bc1 and vhat = vd.(i) /. bc2 in
        pd.(i) <- pd.(i) -. (t.lr *. mhat /. (sqrt vhat +. t.eps))
      done)
    t.params
    (List.combine t.m t.v);
  zero_grads t

let set_lr t lr = t.lr <- lr

let lr t = t.lr
