open Sate_tensor
module Rng = Sate_util.Rng

type linear = { w : Autodiff.t; b : Autodiff.t }

let linear rng ~in_dim ~out_dim =
  { w = Autodiff.leaf (Tensor.xavier rng in_dim out_dim);
    b = Autodiff.leaf (Tensor.create 1 out_dim) }

let forward_linear l x = Autodiff.add_rowvec (Autodiff.matmul x l.w) l.b

let linear_params l = [ l.w; l.b ]

type mlp = linear list

let mlp rng ~dims =
  let rec build = function
    | a :: (b :: _ as rest) -> linear rng ~in_dim:a ~out_dim:b :: build rest
    | [ _ ] | [] -> []
  in
  match dims with
  | _ :: _ :: _ -> build dims
  | _ -> invalid_arg "Layers.mlp: need at least [in; out]"

let forward_mlp layers x =
  let rec go x = function
    | [] -> x
    | [ last ] -> forward_linear last x
    | l :: rest -> go (Autodiff.leaky_relu (forward_linear l x)) rest
  in
  go x layers

let mlp_params layers = List.concat_map linear_params layers

let num_parameters params =
  List.fold_left
    (fun acc (p : Autodiff.t) ->
      acc + (p.Autodiff.value.Tensor.rows * p.Autodiff.value.Tensor.cols))
    0 params

let dump_params params =
  let total = num_parameters params in
  let out = Array.make total 0.0 in
  let off = ref 0 in
  List.iter
    (fun (p : Autodiff.t) ->
      let d = p.Autodiff.value.Tensor.data in
      Array.blit d 0 out !off (Array.length d);
      off := !off + Array.length d)
    params;
  out

let load_params params data =
  let off = ref 0 in
  List.iter
    (fun (p : Autodiff.t) ->
      let d = p.Autodiff.value.Tensor.data in
      if !off + Array.length d > Array.length data then
        invalid_arg "Layers.load_params: data too short";
      Array.blit data !off d 0 (Array.length d);
      off := !off + Array.length d)
    params;
  if !off <> Array.length data then
    invalid_arg "Layers.load_params: data length mismatch"

let tensor_of (p : Autodiff.t) = p.Autodiff.value
