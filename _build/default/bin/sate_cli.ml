(* Command-line interface to the SaTE library.

   Subcommands:
     sate topology  — topology snapshot / holding-time statistics
     sate traffic   — traffic-matrix statistics at a given intensity
     sate train     — train a SaTE model on a scenario and save it
     sate eval      — evaluate a saved model (offline and online)
     sate solve     — run one TE computation with a chosen method *)

open Cmdliner

module Constellation = Sate_orbit.Constellation
module Builder = Sate_topology.Builder
module Snapshot = Sate_topology.Snapshot
module Analysis = Sate_topology.Analysis
module Scenario = Sate_core.Scenario
module Method = Sate_core.Method
module Online = Sate_core.Online
module Model = Sate_gnn.Model
module Trainer = Sate_gnn.Trainer
module Allocation = Sate_te.Allocation
module Instance = Sate_te.Instance
module Stats = Sate_util.Stats

(* Shared options. *)

let scale_arg =
  let doc = "Constellation scale: 66, 176, 396, 528, 1584 or 4236 satellites." in
  Arg.(value & opt int 66 & info [ "scale" ] ~docv:"N" ~doc)

let lambda_arg =
  let doc = "Traffic intensity in flows per second." in
  Arg.(value & opt float 8.0 & info [ "lambda" ] ~docv:"RATE" ~doc)

let mode_arg =
  let mode_conv =
    Arg.enum [ ("lasers", Builder.Lasers); ("relays", Builder.Ground_relays) ]
  in
  let doc = "Cross-shell link regime: $(b,lasers) or $(b,relays)." in
  Arg.(value & opt mode_conv Builder.Lasers & info [ "cross-shell" ] ~docv:"MODE" ~doc)

let seed_arg =
  let doc = "Random seed for deterministic runs." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)

let scenario_of scale mode lambda seed =
  Scenario.create
    ~config:
      { Scenario.scale; cross_shell = mode; lambda; k = 4; seed; warmup_s = 60.0 }
    ()

(* sate topology *)

let topology_cmd =
  let run scale mode snapshots =
    let b =
      Builder.create
        ~config:{ Builder.default_config with Builder.cross_shell = mode }
        (Constellation.of_scale scale)
    in
    let snap = Builder.snapshot b ~time_s:0.0 in
    Printf.printf "scale=%d nodes=%d links=%d\n" scale (Snapshot.num_nodes snap)
      (Array.length snap.Snapshot.links);
    Builder.reset b;
    let ht = Analysis.holding_times_ms b ~start_s:0.0 ~dt_s:0.0125 ~count:snapshots in
    if Array.length ht > 0 then
      Printf.printf "THT over %d snapshots @12.5ms: mean=%.1f ms max=%.1f ms n=%d\n"
        snapshots (Stats.mean ht)
        (snd (Stats.min_max ht))
        (Array.length ht)
    else Printf.printf "topology unchanged over the sampled window\n"
  in
  let snapshots =
    Arg.(value & opt int 400 & info [ "snapshots" ] ~docv:"N" ~doc:"Snapshots to sample at 12.5 ms.")
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Topology snapshot and holding-time statistics")
    Term.(const run $ scale_arg $ mode_arg $ snapshots)

(* sate traffic *)

let traffic_cmd =
  let run scale mode lambda seed =
    let s = scenario_of scale mode lambda seed in
    let inst = Scenario.instance_at s ~time_s:0.0 in
    Printf.printf
      "scale=%d lambda=%.1f: %d commodities, %d candidate paths, total demand %.1f Mbps (routable %.1f)\n"
      scale lambda (Instance.num_commodities inst) (Instance.num_paths inst)
      (Instance.total_demand inst) (Instance.routable_demand inst)
  in
  Cmd.v
    (Cmd.info "traffic" ~doc:"Traffic-matrix statistics for a scenario")
    Term.(const run $ scale_arg $ mode_arg $ lambda_arg $ seed_arg)

(* sate train *)

let model_arg =
  let doc = "Path of the model file." in
  Arg.(value & opt string "sate-model.bin" & info [ "model" ] ~docv:"FILE" ~doc)

let train_cmd =
  let run scale mode lambda seed epochs samples out =
    let s = scenario_of scale mode lambda seed in
    Printf.printf "collecting %d training instances...\n%!" samples;
    let insts =
      List.init samples (fun i -> Scenario.instance_at s ~time_s:(float_of_int i *. 8.0))
    in
    let data = List.map Trainer.make_sample insts in
    let model = Model.create ~seed () in
    Printf.printf "training %d epochs on %d samples...\n%!" epochs samples;
    let r = Trainer.train ~epochs model data in
    Printf.printf "trained in %.1f s (loss %.4f -> %.4f)\n" r.Trainer.wall_clock_s
      r.Trainer.losses.(0)
      r.Trainer.losses.(Array.length r.Trainer.losses - 1);
    Model.save model out;
    Printf.printf "model saved to %s (%d parameters)\n" out (Model.num_parameters model)
  in
  let epochs =
    Arg.(value & opt int 30 & info [ "epochs" ] ~docv:"N" ~doc:"Training epochs.")
  in
  let samples =
    Arg.(value & opt int 5 & info [ "samples" ] ~docv:"N" ~doc:"Training instances.")
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train a SaTE model on a scenario and save it")
    Term.(const run $ scale_arg $ mode_arg $ lambda_arg $ seed_arg $ epochs $ samples $ model_arg)

(* sate eval *)

let eval_cmd =
  let run scale mode lambda seed model_path duration =
    let model = Model.load model_path in
    let s = scenario_of scale mode lambda seed in
    let inst = Scenario.instance_at s ~time_s:0.0 in
    let alloc, ms = Method.solve_timed (Method.Sate model) inst in
    Printf.printf "offline: satisfied=%.1f%% latency=%.1f ms feasible=%b\n%!"
      (100.0 *. Allocation.satisfied_ratio inst alloc)
      ms
      (Allocation.is_feasible inst alloc);
    let s2 = scenario_of scale mode lambda (seed + 1) in
    let r = Online.evaluate ~duration_s:duration s2 (Method.Sate model) in
    Printf.printf "online (%.0f s): satisfied=%.1f%% over %d rounds\n"
      duration
      (100.0 *. r.Online.mean_satisfied)
      r.Online.recomputations
  in
  let duration =
    Arg.(value & opt float 30.0 & info [ "duration" ] ~docv:"S" ~doc:"Online horizon (s).")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a saved SaTE model offline and online")
    Term.(const run $ scale_arg $ mode_arg $ lambda_arg $ seed_arg $ model_arg $ duration)

(* sate solve *)

let solve_cmd =
  let method_conv =
    Arg.enum
      [ ("lp", `Lp); ("pop", `Pop); ("ecmp", `Ecmp); ("routing", `Routing) ]
  in
  let run scale mode lambda seed m =
    let s = scenario_of scale mode lambda seed in
    let inst = Scenario.instance_at s ~time_s:0.0 in
    let m =
      match m with
      | `Lp -> Method.Lp
      | `Pop -> Method.Pop 4
      | `Ecmp -> Method.Ecmp_wf
      | `Routing -> Method.Satellite_routing
    in
    let alloc, ms = Method.solve_timed m inst in
    Printf.printf "%s: satisfied=%.1f%% mlu=%.3f latency=%.1f ms\n" (Method.name m)
      (100.0 *. Allocation.satisfied_ratio inst alloc)
      (Allocation.mlu inst alloc)
      ms
  in
  let m =
    Arg.(value & opt method_conv `Lp
         & info [ "method" ] ~docv:"METHOD" ~doc:"One of lp, pop, ecmp, routing.")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run one TE computation with a chosen method")
    Term.(const run $ scale_arg $ mode_arg $ lambda_arg $ seed_arg $ m)

let () =
  let info =
    Cmd.info "sate" ~version:"1.0.0"
      ~doc:"Low-latency traffic engineering for satellite networks"
  in
  exit (Cmd.eval (Cmd.group info [ topology_cmd; traffic_cmd; train_cmd; eval_cmd; solve_cmd ]))
