(* Bechamel micro-benchmarks of the TE computation kernels: one
   Test.make per method (the latency quantity behind Table-style
   results of Fig. 8) plus the hot tensor kernels. *)

open Bechamel
module Model = Sate_gnn.Model
module Te_graph = Sate_gnn.Te_graph
module Tensor = Sate_tensor.Tensor
module Scenario = Sate_core.Scenario
module Par = Sate_par.Par
module Constellation = Sate_orbit.Constellation
module Builder = Sate_topology.Builder
module Path_db = Sate_paths.Path_db

let tests () =
  let s =
    Scenario.create
      ~config:{ Scenario.default_config with Scenario.lambda = 6.0; warmup_s = 30.0 }
      ()
  in
  let inst = Scenario.instance_at s ~time_s:0.0 in
  let model = Model.create ~seed:1 () in
  let graph = Te_graph.of_instance inst in
  let a = Tensor.xavier (Sate_util.Rng.create 1) 64 64 in
  let b = Tensor.xavier (Sate_util.Rng.create 2) 64 64 in
  (* 256x256 is above the matmul parallel gate; the "-par" variants
     use the ambient pool (sized by SATE_DOMAINS or core count) while
     the plain ones pin a size-1 pool, so the pair measures the
     domain-pool speedup directly. *)
  let a256 = Tensor.xavier (Sate_util.Rng.create 3) 256 256 in
  let b256 = Tensor.xavier (Sate_util.Rng.create 4) 256 256 in
  let iridium = Constellation.iridium in
  let snap = Builder.snapshot (Builder.create iridium) ~time_s:0.0 in
  let db_pairs =
    let n = Constellation.size iridium in
    List.init 16 (fun i -> (i mod n, ((i * 13) + 5) mod n))
  in
  Test.make_grouped ~name:"te" ~fmt:"%s/%s"
    [ Test.make ~name:"sate-inference" (Staged.stage (fun () -> Model.forward model graph));
      Test.make ~name:"sate-end-to-end" (Staged.stage (fun () -> Model.predict model inst));
      Test.make ~name:"lp-optimal" (Staged.stage (fun () -> Sate_te.Lp_solver.solve inst));
      Test.make ~name:"lp-optimal-verified"
        (Staged.stage (fun () -> Sate_te.Lp_solver.solve ~verify:true inst));
      Test.make ~name:"grad-check-ops"
        (Staged.stage (fun () -> Sate_check.Grad_check.all_ops ()));
      Test.make ~name:"ecmp-wf" (Staged.stage (fun () -> Sate_baselines.Ecmp_wf.solve inst));
      Test.make ~name:"satellite-routing"
        (Staged.stage (fun () -> Sate_baselines.Satellite_routing.solve inst));
      Test.make ~name:"graph-build" (Staged.stage (fun () -> Te_graph.of_instance inst));
      Test.make ~name:"matmul-64" (Staged.stage (fun () -> Tensor.matmul a b));
      Test.make ~name:"matmul-256"
        (Staged.stage (fun () -> Par.with_domains 1 (fun () -> Tensor.matmul a256 b256)));
      Test.make ~name:"matmul-256-par" (Staged.stage (fun () -> Tensor.matmul a256 b256));
      Test.make ~name:"path-db"
        (Staged.stage (fun () ->
             Par.with_domains 1 (fun () ->
                 Path_db.compute iridium snap ~pairs:db_pairs ~k:4)));
      Test.make ~name:"path-db-par"
        (Staged.stage (fun () -> Path_db.compute iridium snap ~pairs:db_pairs ~k:4)) ]

let run () =
  print_endline "\n=== micro: bechamel kernel benchmarks (ns/run) ===";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> (name, est) :: acc
        | Some [] | None -> acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) -> Printf.printf "micro %-28s %12.1f ns  (%.3f ms)\n" name ns (ns /. 1e6))
    rows
