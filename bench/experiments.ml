(* One driver per paper table/figure (see DESIGN.md section 4).

   Default sizes are laptop-scale; SATE_BENCH_FULL=1 widens scales
   (including full 4,236-satellite Starlink topology analyses).  Every
   driver prints the rows/series the paper reports, prefixed with its
   experiment id, so the output can be diffed against EXPERIMENTS.md. *)

module Constellation = Sate_orbit.Constellation
module Builder = Sate_topology.Builder
module Snapshot = Sate_topology.Snapshot
module Analysis = Sate_topology.Analysis
module Generator = Sate_traffic.Generator
module Demand = Sate_traffic.Demand
module Flow_class = Sate_traffic.Flow_class
module Path = Sate_paths.Path
module Path_db = Sate_paths.Path_db
module Dijkstra = Sate_paths.Dijkstra
module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Lp_solver = Sate_te.Lp_solver
module Model = Sate_gnn.Model
module Trainer = Sate_gnn.Trainer
module Te_graph = Sate_gnn.Te_graph
module Volume = Sate_pruning.Volume
module Graph_features = Sate_pruning.Graph_features
module Dpp = Sate_pruning.Dpp
module Teal_like = Sate_baselines.Teal_like
module Harp_like = Sate_baselines.Harp_like
module Scenario = Sate_core.Scenario
module Method = Sate_core.Method
module Online = Sate_core.Online
module Offline = Sate_core.Offline
module Control_plane = Sate_core.Control_plane
module Stats = Sate_util.Stats
module Rng = Sate_util.Rng
module Geo = Sate_geo.Geo

let full = Sys.getenv_opt "SATE_BENCH_FULL" = Some "1"

let header id title = Printf.printf "\n=== %s: %s ===\n%!" id title

let rowf fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* Shared scenario / model plumbing.                                   *)

let scenario ?(scale = 66) ?(mode = Builder.Lasers) ?(lambda = 8.0) ?(k = 4)
    ?(seed = 7) () =
  Scenario.create
    ~config:
      { Scenario.scale; cross_shell = mode; lambda; k; seed; warmup_s = 60.0 }
    ()

let instances_of ?scale ?mode ?lambda ?k ?seed ~count ~spacing () =
  let s = scenario ?scale ?mode ?lambda ?k ?seed () in
  List.init count (fun i ->
      Scenario.instance_at s ~time_s:(float_of_int i *. spacing))

(* Trained models are expensive: cache per (scale, mode, objective). *)
let model_cache : (int * Builder.cross_shell_mode * string, Model.t) Hashtbl.t =
  Hashtbl.create 8

let trained_model ?(scale = 66) ?(mode = Builder.Lasers) ?(objective = "throughput")
    ?(epochs = 50) () =
  match Hashtbl.find_opt model_cache (scale, mode, objective) with
  | Some m -> m
  | None ->
      let obj =
        if objective = "mlu" then Lp_solver.Min_mlu else Lp_solver.Max_throughput
      in
      (* Train across traffic intensities so one model serves the
         whole lambda sweep (the paper trains on varying loads). *)
      let train_insts =
        List.concat_map
          (fun lambda -> instances_of ~scale ~mode ~lambda ~count:2 ~spacing:9.0 ())
          [ 6.0; 12.0; 18.0 ]
      in
      let samples = List.map (Trainer.make_sample ~objective:obj) train_insts in
      let model = Model.create ~seed:3 () in
      ignore (Trainer.train ~epochs model samples);
      Hashtbl.replace model_cache (scale, mode, objective) model;
      model

(* ------------------------------------------------------------------ *)
(* Fig. 4 (a): topology holding time CDF.                              *)

let fig4a () =
  header "fig4a" "topology holding time (THT)";
  (* Topology dynamics need the full four-shell constellation: the
     polar shell 3 crosses the 75-degree cutoff and drives most
     inter-orbit churn (two-shell mid-size constellations at 53 deg
     never deactivate links). *)
  let count = if full then 2400 else 600 in
  let cases =
    [ ("starlink-4236/lasers", 4236, Builder.Lasers, count);
      ("starlink-4236/relays", 4236, Builder.Ground_relays, count) ]
  in
  List.iter
    (fun (name, scale, mode, count) ->
      let b =
        Builder.create
          ~config:{ Builder.default_config with Builder.cross_shell = mode }
          (Constellation.of_scale scale)
      in
      let ht = Analysis.holding_times_ms b ~start_s:0.0 ~dt_s:0.0125 ~count in
      if Array.length ht > 0 then begin
        rowf "fig4a %-24s mean=%.1f ms  max=%.1f ms  n=%d" name (Stats.mean ht)
          (snd (Stats.min_max ht))
          (Array.length ht);
        List.iter
          (fun (v, f) -> rowf "fig4a %-24s cdf p%.0f = %.1f ms" name (f *. 100.0) v)
          (Stats.cdf_points ht 4)
      end
      else rowf "fig4a %-24s no topology change in window" name)
    cases

(* ------------------------------------------------------------------ *)
(* Fig. 4 (b): configured-path obsolescence over time.                 *)

let fig4b () =
  header "fig4b" "configured paths becoming obsolete";
  let scale = 4236 in
  let c = Constellation.of_scale scale in
  let b = Builder.create c in
  let snap = Builder.snapshot b ~time_s:0.0 in
  Builder.reset b;
  (* Configure shortest paths for random pairs. *)
  let rng = Rng.create 5 in
  let n = Constellation.size c in
  let paths = ref [] in
  let attempts = if full then 300 else 120 in
  for _ = 1 to attempts do
    let src = Rng.int rng n and dst = Rng.int rng n in
    if src <> dst then
      match Dijkstra.shortest snap ~src ~dst with
      | Some p -> paths := Path.to_list p :: !paths
      | None -> ()
  done;
  let dt = 5.0 in
  let checkpoints = [ 1; 6; 12; 18; 30 ] in
  let series =
    Analysis.path_obsolescence b ~start_s:0.0 ~dt_s:dt ~checkpoints ~paths:!paths
  in
  List.iter
    (fun (k, frac) ->
      rowf "fig4b t=%6.1f s  obsolete=%5.1f%%  (of %d paths)"
        (float_of_int k *. dt) (frac *. 100.0) (List.length !paths))
    series

(* ------------------------------------------------------------------ *)
(* Fig. 4 (c): link exclusion vs TE interval.                          *)

let fig4c () =
  header "fig4c" "ISL exclusion ratio vs interval";
  let scale = 4236 in
  let b = Builder.create (Constellation.of_scale scale) in
  let dt = 0.5 in
  let intervals = [ 1; 4; 20; 60; 120; 240 ] in
  let series = Analysis.exclusion_series b ~start_s:0.0 ~dt_s:dt ~intervals in
  List.iter
    (fun (k, ratio) ->
      rowf "fig4c interval=%7.1f s  excluded=%5.1f%%" (float_of_int k *. dt)
        (ratio *. 100.0))
    series

(* ------------------------------------------------------------------ *)
(* Table 1: dataset volumes, original vs pruned.                       *)

let tab1 () =
  header "tab1" "data-point volume, original vs pruned (GB)";
  let scales = if full then [ 66; 396; 1584; 4236 ] else [ 66; 396; 1584 ] in
  List.iter
    (fun scale ->
      let s = scenario ~scale ~lambda:8.0 ~k:10 () in
      let inst = Scenario.instance_at s ~time_s:0.0 in
      let demand = Scenario.demand_at s ~time_s:0.5 in
      let r = Volume.of_instance ~k:10 inst demand in
      rowf
        "tab1 scale=%5d  path %10.4g -> %10.4g GB   traffic %10.4g -> %10.4g GB   reduction %8.0fx"
        r.Volume.scale r.Volume.original_path_gb r.Volume.pruned_path_gb
        r.Volume.original_traffic_gb r.Volume.pruned_traffic_gb r.Volume.reduction)
    scales

(* ------------------------------------------------------------------ *)
(* Fig. 8 (a): computational latency vs constellation scale.           *)

let fig8a () =
  header "fig8a" "TE computational latency vs scale (ms)";
  let scales = if full then [ 66; 176; 396; 1584 ] else [ 66; 176; 396 ] in
  List.iter
    (fun scale ->
      let insts = instances_of ~scale ~lambda:16.0 ~count:2 ~spacing:5.0 () in
      let time_method name solve =
        let ms =
          List.map
            (fun inst ->
              let t0 = Unix.gettimeofday () in
              ignore (solve inst);
              (Unix.gettimeofday () -. t0) *. 1000.0)
            insts
        in
        rowf "fig8a scale=%5d  %-18s %10.2f ms" scale name
          (Stats.mean (Array.of_list ms))
      in
      (* Latency is weight-independent: untrained models time the
         same architecture without hours of training per scale. *)
      let sate = Model.create ~seed:1 () in
      let harp = Harp_like.create ~seed:1 () in
      time_method "sate (end-to-end)" (fun i -> Model.predict sate i);
      let graphs = List.map Te_graph.of_instance insts in
      let infer_ms =
        List.map
          (fun g ->
            let t0 = Unix.gettimeofday () in
            ignore (Model.forward sate g);
            (Unix.gettimeofday () -. t0) *. 1000.0)
          graphs
      in
      rowf "fig8a scale=%5d  %-18s %10.2f ms" scale "sate (inference)"
        (Stats.mean (Array.of_list infer_ms));
      time_method "harp-like" (fun i -> Harp_like.predict harp i);
      time_method "lp-optimal" (fun i -> Lp_solver.solve i);
      (match insts with
      | inst :: _ ->
          let _, pop_ms = Sate_baselines.Pop.solve_timed ~k:4 inst in
          rowf "fig8a scale=%5d  %-18s %10.2f ms" scale "pop-4 (parallel)" pop_ms
      | [] -> ());
      time_method "ecmp-wf" (fun i -> Sate_baselines.Ecmp_wf.solve i);
      if scale <= 176 then begin
        let teal = Teal_like.create ~num_sats:scale ~k:4 () in
        time_method "teal-like" (fun i -> Teal_like.predict teal i)
      end
      else
        rowf "fig8a scale=%5d  %-18s %10s" scale "teal-like"
          "OOM (dense input)")
    scales

(* ------------------------------------------------------------------ *)
(* Fig. 8 (b): CDF of SaTE's latency.                                  *)

let fig8b () =
  header "fig8b" "SaTE inference latency CDF";
  let insts = instances_of ~scale:66 ~count:3 ~spacing:5.0 () in
  let model = trained_model () in
  let samples =
    List.concat_map
      (fun inst ->
        let g = Te_graph.of_instance inst in
        List.init 10 (fun _ ->
            let t0 = Unix.gettimeofday () in
            ignore (Model.forward model g);
            (Unix.gettimeofday () -. t0) *. 1000.0))
      insts
  in
  let arr = Array.of_list samples in
  rowf "fig8b mean=%.2f ms  std=%.2f ms  n=%d" (Stats.mean arr) (Stats.std arr)
    (Array.length arr);
  List.iter
    (fun (v, f) -> rowf "fig8b cdf p%.0f = %.2f ms" (f *. 100.0) v)
    (Stats.cdf_points arr 5)

(* ------------------------------------------------------------------ *)
(* Fig. 9 (a): training time vs scale.                                 *)

let fig9a () =
  header "fig9a" "training wall-clock vs scale (s)";
  let scales = if full then [ 66; 176 ] else [ 66 ] in
  List.iter
    (fun scale ->
      let insts = instances_of ~scale ~count:3 ~spacing:5.0 () in
      let samples = List.map Trainer.make_sample insts in
      let sate = Model.create ~seed:2 () in
      let r = Trainer.train ~epochs:5 sate samples in
      rowf "fig9a scale=%4d  sate       %8.2f s (5 epochs x 3 samples)" scale
        r.Trainer.wall_clock_s;
      let teal = Teal_like.create ~num_sats:scale ~k:4 () in
      let teal_s = Teal_like.train ~epochs:5 teal insts in
      rowf "fig9a scale=%4d  teal-like  %8.2f s" scale teal_s;
      let harp = Harp_like.create ~seed:2 () in
      let harp_s = Harp_like.train ~epochs:5 harp insts in
      rowf "fig9a scale=%4d  harp-like  %8.2f s" scale harp_s)
    scales

(* ------------------------------------------------------------------ *)
(* Fig. 9 (b): satisfied demand vs number of representative            *)
(* topologies (DPP topology pruning), plus DPP-vs-random ablation.     *)

let fig9b () =
  header "fig9b" "satisfied demand vs representative topologies";
  (* Topology pruning varies the *topology* while holding traffic
     load steady: pair one modest demand set per pool entry with
     topology snapshots spread across the orbit. *)
  let pool_size = if full then 32 else 16 in
  let c = Constellation.of_scale 66 in
  let b = Builder.create c in
  let gen_instance seed time_s =
    let snap = Builder.snapshot b ~time_s in
    let g =
      Generator.create
        ~config:{ Generator.default_config with Generator.seed }
        ~lambda:6.0 ()
    in
    Generator.advance g ~to_s:40.0;
    let demand, up, down = g |> fun g -> Generator.demand_at g snap in
    let pairs =
      Array.to_list
        (Array.map (fun (e : Demand.entry) -> (e.Demand.src, e.Demand.dst)) demand.Demand.entries)
    in
    let db = Path_db.compute c snap ~pairs ~k:4 in
    Instance.make ~up_caps:up ~down_caps:down snap demand db
  in
  let pool =
    Array.init pool_size (fun i -> gen_instance (100 + i) (float_of_int i *. 40.0))
  in
  let vectors =
    Array.map (fun inst -> Graph_features.vectorize inst.Instance.snapshot) pool
  in
  (* Unseen test set: later topologies, fresh traffic seeds. *)
  let test =
    List.init 4 (fun i ->
        gen_instance (200 + i) (float_of_int (pool_size * 40) +. (float_of_int i *. 25.0)))
  in
  let test_samples = List.map Trainer.make_sample test in
  let evaluate_subset name idx =
    let samples =
      Array.to_list idx |> List.map (fun i -> Trainer.make_sample pool.(i))
    in
    let model = Model.create ~seed:4 () in
    ignore (Trainer.train ~epochs:12 model samples);
    let sat = Trainer.evaluate model test_samples in
    rowf "fig9b %-12s k=%2d  satisfied=%.3f" name (Array.length idx) sat
  in
  List.iter
    (fun k -> evaluate_subset "dpp" (Dpp.select ~vectors ~k ()))
    [ 2; 4; 8 ];
  (* Ablation: random selection at the middle size. *)
  evaluate_subset "random" (Dpp.select_random ~seed:9 ~n:pool_size ~k:4);
  evaluate_subset "random" (Dpp.select_random ~seed:10 ~n:pool_size ~k:8)

(* ------------------------------------------------------------------ *)
(* Fig. 10 (a, b): online satisfied demand vs traffic intensity.       *)

let fig10ab () =
  header "fig10ab" "online satisfied demand vs traffic intensity";
  let modes =
    [ ("lasers", Builder.Lasers); ("relays", Builder.Ground_relays) ]
  in
  let lambdas = if full then [ 4.0; 8.0; 16.0; 24.0 ] else [ 6.0; 12.0; 18.0 ] in
  (* The paper replays each baseline at its Starlink-scale cadence
     (Gurobi 47 s, POP 25 s, ECMP 54 s; SaTE every second). *)
  let cadence = function
    | Method.Lp -> Some 47_000.0
    | Method.Pop _ -> Some 25_000.0
    | Method.Ecmp_wf -> Some 54_000.0
    | Method.Sate _ -> Some 17.0
    | Method.Satellite_routing -> Some 0.0
    | Method.Lp_utility | Method.Max_min | Method.Sate_mlu _ | Method.Teal _
    | Method.Harp _ ->
        None
  in
  List.iter
    (fun (mode_name, mode) ->
      let model = trained_model ~mode () in
      List.iter
        (fun lambda ->
          let methods =
            [ Method.Sate model; Method.Lp; Method.Pop 4; Method.Ecmp_wf;
              Method.Satellite_routing ]
          in
          (* One domain-pool task per method; each builds its own
             (identically seeded) scenario since Scenario.t is
             stateful. *)
          let reports =
            Online.evaluate_all ~cadence_ms:cadence ~duration_s:45.0
              ~scenario_of:(fun _ -> scenario ~mode ~lambda ())
              methods
          in
          List.iter
            (fun r ->
              rowf "fig10ab %-7s lambda=%4.1f  %-18s satisfied=%.3f (rounds=%d)"
                mode_name lambda r.Online.method_name r.Online.mean_satisfied
                r.Online.recomputations)
            reports)
        lambdas)
    modes

(* ------------------------------------------------------------------ *)
(* Fig. 10 (c): SaTE vs Teal at a scale Teal can handle.               *)

let fig10c () =
  header "fig10c" "SaTE vs Teal-like (66 satellites, offline quality)";
  (* Test hundreds of seconds after training: the topology has
     changed, which SaTE's GNN absorbs but Teal's fixed-size mapping
     (trained on one static topology, as in the paper) does not. *)
  let s_test = scenario ~seed:21 () in
  let insts =
    List.init 4 (fun i ->
        Scenario.instance_at s_test ~time_s:(500.0 +. (float_of_int i *. 60.0)))
  in
  let model = trained_model () in
  let teal = Teal_like.create ~num_sats:66 ~k:4 () in
  let train_insts = instances_of ~count:4 ~spacing:7.0 () in
  ignore (Teal_like.train ~epochs:15 teal train_insts);
  let sate_sat = Offline.satisfied (Method.Sate model) insts in
  let teal_sat = Offline.satisfied (Method.Teal teal) insts in
  let lp_sat = Offline.satisfied Method.Lp insts in
  rowf "fig10c sate      satisfied=%.3f" sate_sat;
  rowf "fig10c teal-like satisfied=%.3f" teal_sat;
  rowf "fig10c lp bound  satisfied=%.3f" lp_sat

(* ------------------------------------------------------------------ *)
(* Fig. 10 (d): cross-scale generalization.                            *)

let fig10d () =
  header "fig10d" "cross-scale generalization (ratio to offline LP optimum)";
  let base_model = trained_model () in
  let test_scales = if full then [ 66; 176; 396 ] else [ 66; 176 ] in
  List.iter
    (fun scale ->
      let insts = instances_of ~scale ~count:2 ~spacing:9.0 ~seed:31 () in
      let lp = Offline.satisfied Method.Lp insts in
      let transferred = Offline.satisfied (Method.Sate base_model) insts in
      (* A model trained natively at this scale. *)
      let native = trained_model ~scale () in
      let native_sat = Offline.satisfied (Method.Sate native) insts in
      rowf "fig10d scale=%4d  native=%.3f  transferred-from-66=%.3f  (lp=%.3f)"
        scale (native_sat /. Float.max 1e-9 lp) (transferred /. Float.max 1e-9 lp) lp)
    test_scales

(* ------------------------------------------------------------------ *)
(* Fig. 12: access-strategy path delay.                                *)

let fig12 () =
  header "fig12" "path delay across access strategies (Frankfurt-Singapore)";
  let c = Constellation.of_scale 396 in
  let b = Builder.create c in
  let snap = Builder.snapshot b ~time_s:0.0 in
  let frankfurt = Geo.of_lat_lon ~lat_deg:50.1 ~lon_deg:8.7 ~alt_km:0.0 in
  let singapore = Geo.of_lat_lon ~lat_deg:1.35 ~lon_deg:103.8 ~alt_km:0.0 in
  let nearest_sat ?shell_limit ground =
    let best = ref (-1) and best_d = ref Float.infinity in
    Array.iteri
      (fun i p ->
        let in_shell =
          match shell_limit with
          | None -> true
          | Some s -> (Constellation.coord_of_id c i).Constellation.shell = s
        in
        if in_shell then begin
          let d = Geo.distance ground p in
          if d < !best_d then begin
            best_d := d;
            best := i
          end
        end)
      snap.Snapshot.sat_positions;
    (!best, !best_d)
  in
  let strategy name shell_limit =
    let src, d_src = nearest_sat ?shell_limit frankfurt in
    let dst, d_dst = nearest_sat ?shell_limit singapore in
    (* Same-shell access also keeps the space segment in that shell. *)
    let banned_nodes =
      match shell_limit with
      | None -> fun _ -> false
      | Some sh ->
          fun node ->
            node < Constellation.size c
            && (Constellation.coord_of_id c node).Constellation.shell <> sh
    in
    match Dijkstra.shortest ~weight:Dijkstra.Km ~banned_nodes snap ~src ~dst with
    | Some p ->
        let up = d_src /. Geo.speed_of_light_km_s *. 1000.0 in
        let down = d_dst /. Geo.speed_of_light_km_s *. 1000.0 in
        let space = Path.delay_ms snap p in
        rowf "fig12 %-22s delay=%6.2f ms (up %.2f + space %.2f + down %.2f, %d hops)"
          name (up +. space +. down) up space down (Path.hops p)
    | None -> rowf "fig12 %-22s unreachable" name
  in
  strategy "any-visible" None;
  strategy "same-shell (shell 0)" (Some 0)

(* ------------------------------------------------------------------ *)
(* Fig. 13: traffic-rule distribution delay.                           *)

let fig13 () =
  header "fig13" "rule distribution delay from Houston";
  let scale = if full then 4236 else 396 in
  let b = Builder.create (Constellation.of_scale scale) in
  let snap = Builder.snapshot b ~time_s:0.0 in
  let delays = Control_plane.rule_distribution_delays_ms snap in
  let finite =
    Array.of_list (List.filter Float.is_finite (Array.to_list delays))
  in
  let lo, hi = Stats.min_max finite in
  rowf "fig13 scale=%d reachable=%d/%d  min=%.1f ms  max=%.1f ms" scale
    (Array.length finite) (Array.length delays) lo hi;
  List.iter
    (fun (v, f) -> rowf "fig13 cdf p%.0f = %.1f ms" (f *. 100.0) v)
    (Stats.cdf_points finite 5)

(* ------------------------------------------------------------------ *)
(* Fig. 14: offline satisfied demand vs intensity.                     *)

let fig14 () =
  header "fig14" "offline satisfied demand (no computation delay)";
  let lambdas = [ 6.0; 12.0; 18.0 ] in
  let model = trained_model () in
  List.iter
    (fun lambda ->
      let insts = instances_of ~lambda ~count:2 ~spacing:8.0 ~seed:41 () in
      let report name m =
        rowf "fig14 lambda=%4.1f  %-18s satisfied=%.3f" lambda name
          (Offline.satisfied m insts)
      in
      report "lp-optimal" Method.Lp;
      report "sate" (Method.Sate model);
      report "pop-4" (Method.Pop 4);
      report "ecmp-wf" Method.Ecmp_wf;
      report "satellite-routing" Method.Satellite_routing)
    lambdas

(* ------------------------------------------------------------------ *)
(* Fig. 15 (a): MLU minimisation.                                      *)

let fig15a () =
  header "fig15a" "maximum link utilisation (lower is better)";
  (* Light enough load that all demand fits: MLU comparisons are only
     meaningful between allocations carrying the same traffic. *)
  let insts = instances_of ~lambda:3.0 ~count:2 ~spacing:8.0 ~seed:51 () in
  let mlu_model = trained_model ~objective:"mlu" () in
  let harp = Harp_like.create ~seed:5 () in
  ignore (Harp_like.train ~epochs:10 harp (instances_of ~lambda:3.0 ~count:3 ~spacing:7.0 ()));
  let report name m =
    rowf "fig15a %-18s mlu=%.3f (all demand routed)" name (Offline.mlu m insts)
  in
  report "lp-mlu-optimal" Method.Lp;
  report "sate-mlu" (Method.Sate_mlu mlu_model);
  report "harp-like" (Method.Harp harp);
  report "pop-4" (Method.Pop 4);
  report "ecmp-wf" Method.Ecmp_wf

(* ------------------------------------------------------------------ *)
(* Fig. 15 (b): link-failure robustness.                               *)

let fig15b () =
  header "fig15b" "satisfied-demand loss under random link failures";
  let model = trained_model () in
  let s = scenario ~seed:61 () in
  let inst = Scenario.instance_at s ~time_s:0.0 in
  let baseline = Allocation.satisfied_ratio inst (Model.predict model inst) in
  let rng = Rng.create 8 in
  List.iter
    (fun rate ->
      let losses =
        List.init 3 (fun _ ->
            let snap', _ = Analysis.random_link_failures inst.Instance.snapshot ~rate rng in
            (* Rebuild the instance against the degraded topology:
               stored paths crossing failed links disappear. *)
            let demand =
              Demand.of_assoc ~num_sats:inst.Instance.snapshot.Snapshot.num_sats
                (Array.to_list
                   (Array.map
                      (fun (c : Instance.commodity) ->
                        (c.Instance.src, c.Instance.dst, c.Instance.demand_mbps))
                      inst.Instance.commodities))
            in
            let pairs =
              Array.to_list
                (Array.map
                   (fun (e : Demand.entry) -> (e.Demand.src, e.Demand.dst))
                   demand.Demand.entries)
            in
            let db =
              Path_db.compute (Scenario.constellation s) snap' ~pairs
                ~k:(Scenario.config s).Scenario.k
            in
            let inst' =
              Instance.make ~up_caps:inst.Instance.up_caps
                ~down_caps:inst.Instance.down_caps snap' demand db
            in
            let sat = Allocation.satisfied_ratio inst' (Model.predict model inst') in
            Float.max 0.0 (baseline -. sat))
      in
      rowf "fig15b failure=%4.1f%%  loss=%.2f%%" (rate *. 100.0)
        (100.0 *. Stats.mean (Array.of_list losses)))
    [ 0.001; 0.01; 0.05 ]

(* ------------------------------------------------------------------ *)
(* Fig. 16 (a): CDF of flow-level satisfied demand.                    *)

let fig16a () =
  header "fig16a" "flow-level satisfied demand CDF";
  let model = trained_model () in
  let s = scenario ~lambda:10.0 ~seed:71 () in
  let inst = Scenario.instance_at s ~time_s:0.0 in
  let ratios = Offline.per_flow_ratios (Method.Sate model) inst in
  let fully = Array.fold_left (fun acc r -> if r > 0.999 then acc + 1 else acc) 0 ratios in
  rowf "fig16a flows=%d  fully-satisfied=%.1f%%" (Array.length ratios)
    (100.0 *. float_of_int fully /. float_of_int (max 1 (Array.length ratios)));
  List.iter
    (fun (v, f) -> rowf "fig16a cdf p%.0f = %.3f" (f *. 100.0) v)
    (Stats.cdf_points ratios 5)

(* ------------------------------------------------------------------ *)
(* Fig. 16 (b): coefficient of variation over time spans.              *)

let fig16b () =
  header "fig16b" "CV of flow-level satisfied demand over time spans";
  let model = trained_model () in
  let s = scenario ~lambda:10.0 ~seed:81 () in
  let ticks = 16 in
  (* Per-pair satisfied series over the run. *)
  let series : (int * int, float list) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to ticks - 1 do
    let inst = Scenario.instance_at s ~time_s:(float_of_int i) in
    let ratios = Offline.per_flow_ratios (Method.Sate model) inst in
    Array.iteri
      (fun f r ->
        let c = inst.Instance.commodities.(f) in
        let key = (c.Instance.src, c.Instance.dst) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt series key) in
        Hashtbl.replace series key (r :: prev))
      ratios
  done;
  List.iter
    (fun span ->
      let cvs = ref [] in
      Hashtbl.iter
        (fun _ values ->
          if List.length values >= span then begin
            let arr = Array.of_list (List.filteri (fun i _ -> i < span) values) in
            let cv = Stats.coefficient_of_variation arr in
            if Float.is_finite cv then cvs := cv :: !cvs
          end)
        series;
      if !cvs <> [] then
        rowf "fig16b span=%2d s  median CV=%.3f (pairs=%d)" span
          (Stats.median (Array.of_list !cvs))
          (List.length !cvs))
    [ 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Tables 2 and 4: parameter echoes.                                   *)

let tab2 () =
  header "tab2" "traffic flow parameters";
  List.iter
    (fun cls ->
      let lo, hi = Flow_class.duration_range_s cls in
      rowf "tab2 %-14s demand=%7.3f Mbps  duration=%5.0f-%5.0f s"
        (Flow_class.to_string cls) (Flow_class.demand_mbps cls) lo hi)
    Flow_class.all

let tab4 () =
  header "tab4" "orbital parameters";
  List.iter
    (fun constellation ->
      Array.iter
        (fun (sh : Sate_orbit.Shell.t) ->
          rowf "tab4 %-18s %-10s alt=%5.0f km  inc=%5.1f deg  planes=%2d x %2d"
            (Constellation.name constellation) sh.Sate_orbit.Shell.name
            sh.Sate_orbit.Shell.altitude_km sh.Sate_orbit.Shell.inclination_deg
            sh.Sate_orbit.Shell.planes sh.Sate_orbit.Shell.sats_per_plane)
        (Constellation.shells constellation))
    [ Constellation.iridium; Constellation.starlink_phase1 ]

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5).                                    *)

let ablate_attention () =
  header "ablate_attention" "GAT attention vs mean aggregation";
  let insts = instances_of ~count:3 ~spacing:7.0 () in
  let samples = List.map Trainer.make_sample insts in
  let test = List.map Trainer.make_sample (instances_of ~count:2 ~spacing:9.0 ~seed:91 ()) in
  let run name hyper =
    let model = Model.create ~hyper ~seed:3 () in
    ignore (Trainer.train ~epochs:25 model samples);
    rowf "ablate_attention %-10s satisfied=%.3f" name (Trainer.evaluate model test)
  in
  run "attention" Model.default_hyper;
  run "mean" { Model.default_hyper with Model.attention = false }

let ablate_graph () =
  header "ablate_graph" "reduced graph (Fig 6b) vs +access relation (Fig 6a)";
  let insts = instances_of ~count:2 ~spacing:7.0 () in
  let time_variant name with_access =
    let hyper = { Model.default_hyper with Model.with_access_relation = with_access } in
    let model = Model.create ~hyper ~seed:7 () in
    let ms =
      List.map
        (fun inst ->
          let g = Te_graph.of_instance ~with_access_relation:with_access inst in
          let t0 = Unix.gettimeofday () in
          ignore (Model.forward model g);
          (Unix.gettimeofday () -. t0) *. 1000.0)
        insts
    in
    rowf "ablate_graph %-10s inference=%.2f ms  params=%d" name
      (Stats.mean (Array.of_list ms))
      (Model.num_parameters model)
  in
  time_variant "reduced" false;
  time_variant "full" true

let ablate_trim () =
  header "ablate_trim" "constraint-violation correction on/off";
  let model = trained_model () in
  let inst = List.hd (instances_of ~lambda:16.0 ~count:1 ~spacing:1.0 ~seed:95 ()) in
  let raw = Model.predict ~trim:false model inst in
  let trimmed = Model.predict model inst in
  rowf "ablate_trim raw      feasible=%b  flow=%.1f Mbps"
    (Allocation.is_feasible inst raw) (Allocation.total_flow raw);
  rowf "ablate_trim trimmed  feasible=%b  flow=%.1f Mbps"
    (Allocation.is_feasible inst trimmed) (Allocation.total_flow trimmed)

let ablate_fairness () =
  header "ablate_fairness" "throughput vs log-utility vs max-min (flow-level fairness, H.4)";
  let inst = List.hd (instances_of ~lambda:14.0 ~count:1 ~spacing:1.0 ~seed:97 ()) in
  let report m =
    let ratios = Offline.per_flow_ratios m inst in
    let starved =
      Array.fold_left (fun acc r -> if r < 0.05 then acc + 1 else acc) 0 ratios
    in
    let alloc = Method.solve m inst in
    rowf "ablate_fairness %-16s satisfied=%.3f  p10-flow=%.3f  starved(<5%%)=%d/%d"
      (Method.name m)
      (Allocation.satisfied_ratio inst alloc)
      (Stats.percentile ratios 10.0)
      starved (Array.length ratios)
  in
  List.iter report [ Method.Lp; Method.Lp_utility; Method.Max_min; Method.Ecmp_wf ]

let ablate_finetune () =
  header "ablate_finetune" "cross-scale transfer + fine-tuning (Sec. 7)";
  let base = trained_model () in
  let target_scale = 176 in
  let test =
    List.map Trainer.make_sample
      (instances_of ~scale:target_scale ~count:2 ~spacing:9.0 ~seed:99 ())
  in
  let before = Trainer.evaluate base test in
  (* Fine-tune a copy on a few target-scale samples. *)
  let tmp = Filename.temp_file "sate_ft" ".bin" in
  Model.save base tmp;
  let tuned = Model.load tmp in
  Sys.remove tmp;
  let tune_samples =
    List.map Trainer.make_sample
      (instances_of ~scale:target_scale ~count:3 ~spacing:8.0 ~seed:98 ())
  in
  ignore (Trainer.fine_tune ~epochs:10 tuned tune_samples);
  let after = Trainer.evaluate tuned test in
  rowf "ablate_finetune transferred-from-66      satisfied=%.3f" before;
  rowf "ablate_finetune after-10-epoch-fine-tune satisfied=%.3f" after

(* ------------------------------------------------------------------ *)

let all : (string * (unit -> unit)) list =
  [ ("tab2", tab2);
    ("tab4", tab4);
    ("fig4a", fig4a);
    ("fig4b", fig4b);
    ("fig4c", fig4c);
    ("tab1", tab1);
    ("fig8a", fig8a);
    ("fig8b", fig8b);
    ("fig9a", fig9a);
    ("fig9b", fig9b);
    ("fig10ab", fig10ab);
    ("fig10c", fig10c);
    ("fig10d", fig10d);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15a", fig15a);
    ("fig15b", fig15b);
    ("fig16a", fig16a);
    ("fig16b", fig16b);
    ("ablate_attention", ablate_attention);
    ("ablate_fairness", ablate_fairness);
    ("ablate_finetune", ablate_finetune);
    ("ablate_graph", ablate_graph);
    ("ablate_trim", ablate_trim) ]
