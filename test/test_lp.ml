(* Tests for Sate_lp.Simplex. *)

open Sate_lp.Simplex
module Certificate = Sate_lp.Certificate

(* Every Optimal outcome in this file round-trips through the
   independent certificate checker. *)
let certify ~c ~constraints outcome =
  match Certificate.check ~c ~constraints outcome with
  | None -> Alcotest.fail "certificate: expected a report for Optimal"
  | Some report ->
      if not (Certificate.valid report) then
        Alcotest.fail (Certificate.report_to_string report)

let solve_opt ?maximize ?max_iters ~c ~constraints () =
  match solve ?maximize ?max_iters ~c ~constraints () with
  | Optimal { objective; solution } as outcome ->
      certify ~c ~constraints outcome;
      (objective, solution)
  | Infeasible -> Alcotest.fail "unexpected infeasible"
  | Unbounded -> Alcotest.fail "unexpected unbounded"
  | Iteration_limit -> Alcotest.fail "unexpected iteration limit"

let test_max_le () =
  (* max 3x + 2y, x + y <= 4, x + 3y <= 6: optimum (4, 0) = 12. *)
  let obj, sol =
    solve_opt ~c:[| 3.0; 2.0 |]
      ~constraints:
        [ { coeffs = [| 1.0; 1.0 |]; sense = Le; rhs = 4.0 };
          { coeffs = [| 1.0; 3.0 |]; sense = Le; rhs = 6.0 } ]
      ()
  in
  Alcotest.(check (float 1e-6)) "objective" 12.0 obj;
  Alcotest.(check (float 1e-6)) "x" 4.0 sol.(0);
  Alcotest.(check (float 1e-6)) "y" 0.0 sol.(1)

let test_min_ge_eq () =
  (* min x + y, x + 2y >= 4, 3x + y = 6: optimum x=1.6 y=1.2, obj 2.8. *)
  let obj, sol =
    solve_opt ~maximize:false ~c:[| 1.0; 1.0 |]
      ~constraints:
        [ { coeffs = [| 1.0; 2.0 |]; sense = Ge; rhs = 4.0 };
          { coeffs = [| 3.0; 1.0 |]; sense = Eq; rhs = 6.0 } ]
      ()
  in
  Alcotest.(check (float 1e-6)) "objective" 2.8 obj;
  Alcotest.(check (float 1e-6)) "x" 1.6 sol.(0);
  Alcotest.(check (float 1e-6)) "y" 1.2 sol.(1)

let test_infeasible () =
  match
    solve ~c:[| 1.0 |]
      ~constraints:
        [ { coeffs = [| 1.0 |]; sense = Le; rhs = 1.0 };
          { coeffs = [| 1.0 |]; sense = Ge; rhs = 2.0 } ]
      ()
  with
  | Infeasible -> ()
  | Optimal _ | Unbounded | Iteration_limit -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  match
    solve ~c:[| 1.0 |]
      ~constraints:[ { coeffs = [| -1.0 |]; sense = Le; rhs = 0.0 } ]
      ()
  with
  | Unbounded -> ()
  | Optimal _ | Infeasible | Iteration_limit -> Alcotest.fail "expected unbounded"

let test_negative_rhs_normalisation () =
  (* x >= 2 written as -x <= -2; minimize x -> 2. *)
  let obj, _ =
    solve_opt ~maximize:false ~c:[| 1.0 |]
      ~constraints:[ { coeffs = [| -1.0 |]; sense = Le; rhs = -2.0 } ]
      ()
  in
  Alcotest.(check (float 1e-6)) "objective" 2.0 obj

let test_degenerate () =
  (* Redundant constraints with a tie: must still terminate. *)
  let obj, _ =
    solve_opt ~c:[| 1.0; 1.0 |]
      ~constraints:
        [ { coeffs = [| 1.0; 0.0 |]; sense = Le; rhs = 1.0 };
          { coeffs = [| 1.0; 0.0 |]; sense = Le; rhs = 1.0 };
          { coeffs = [| 0.0; 1.0 |]; sense = Le; rhs = 1.0 };
          { coeffs = [| 1.0; 1.0 |]; sense = Le; rhs = 2.0 } ]
      ()
  in
  Alcotest.(check (float 1e-6)) "objective" 2.0 obj

let test_degenerate_bland_fallback () =
  (* Duplicated rows make the basis degenerate; the tiny iteration
     budget drives the solver past [bland_after = max_iters / 2], so
     the final pivots run under Bland's rule and must still reach the
     optimum x = 2, z = 2. *)
  let obj, sol =
    solve_opt ~max_iters:8 ~c:[| 2.0; 3.0; 1.5 |]
      ~constraints:
        [ { coeffs = [| 1.0; 1.0; 0.0 |]; sense = Le; rhs = 2.0 };
          { coeffs = [| 1.0; 1.0; 0.0 |]; sense = Le; rhs = 2.0 };
          { coeffs = [| 0.0; 1.0; 1.0 |]; sense = Le; rhs = 2.0 } ]
      ()
  in
  Alcotest.(check (float 1e-6)) "objective" 7.0 obj;
  Alcotest.(check (float 1e-6)) "x" 2.0 sol.(0);
  Alcotest.(check (float 1e-6)) "z" 2.0 sol.(2)

let test_eq_only_infeasible () =
  (* Contradictory equalities: Big-M leaves an artificial variable
     basic at a nonzero level. *)
  match
    solve ~c:[| 1.0; 1.0 |]
      ~constraints:
        [ { coeffs = [| 1.0; 1.0 |]; sense = Eq; rhs = 1.0 };
          { coeffs = [| 1.0; 1.0 |]; sense = Eq; rhs = 2.0 } ]
      ()
  with
  | Infeasible -> ()
  | Optimal _ | Unbounded | Iteration_limit -> Alcotest.fail "expected infeasible"

let test_zero_objective () =
  let obj, _ =
    solve_opt ~c:[| 0.0; 0.0 |]
      ~constraints:[ { coeffs = [| 1.0; 1.0 |]; sense = Le; rhs = 5.0 } ]
      ()
  in
  Alcotest.(check (float 1e-6)) "objective" 0.0 obj

let test_dimension_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Simplex.solve: coefficient length mismatch") (fun () ->
      ignore
        (solve ~c:[| 1.0; 2.0 |]
           ~constraints:[ { coeffs = [| 1.0 |]; sense = Le; rhs = 1.0 } ]
           ()))

(* Random LPs: the returned solution must satisfy every constraint and
   be at least as good as the origin when the origin is feasible. *)
let prop_solution_feasible =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 4 in
      let* m = int_range 1 5 in
      let* c = array_repeat n (float_range (-5.0) 5.0) in
      let* rows = array_repeat m (array_repeat n (float_range (-3.0) 3.0)) in
      let* rhs = array_repeat m (float_range 0.5 10.0) in
      return (c, rows, rhs))
  in
  QCheck.Test.make ~name:"simplex solution satisfies constraints" ~count:200
    (QCheck.make gen)
    (fun (c, rows, rhs) ->
      let constraints =
        Array.to_list
          (Array.mapi (fun i coeffs -> { coeffs; sense = Le; rhs = rhs.(i) }) rows)
      in
      match solve ~c ~constraints () with
      | Optimal { solution; objective } as outcome ->
          let certified =
            match Certificate.check ~c ~constraints outcome with
            | Some report -> Certificate.valid report
            | None -> false
          in
          let ok_constraints =
            Array.for_all2
              (fun coeffs b ->
                let lhs = ref 0.0 in
                Array.iteri (fun j a -> lhs := !lhs +. (a *. solution.(j))) coeffs;
                !lhs <= b +. 1e-5)
              rows rhs
          in
          let nonneg = Array.for_all (fun x -> x >= -1e-9) solution in
          (* rhs > 0 so x = 0 is feasible: optimum must be >= 0. *)
          certified && ok_constraints && nonneg && objective >= -1e-6
      | Unbounded -> true (* possible with negative row coefficients *)
      | Infeasible -> false (* impossible: origin is feasible *)
      | Iteration_limit -> false)

let suite =
  [ Alcotest.test_case "max with <=" `Quick test_max_le;
    Alcotest.test_case "min with >= and =" `Quick test_min_ge_eq;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "negative rhs" `Quick test_negative_rhs_normalisation;
    Alcotest.test_case "degenerate" `Quick test_degenerate;
    Alcotest.test_case "degenerate bland fallback" `Quick test_degenerate_bland_fallback;
    Alcotest.test_case "eq-only infeasible" `Quick test_eq_only_infeasible;
    Alcotest.test_case "zero objective" `Quick test_zero_objective;
    Alcotest.test_case "dimension mismatch" `Quick test_dimension_mismatch;
    QCheck_alcotest.to_alcotest prop_solution_feasible ]
