(* Tests for Sate_util: RNG, statistics, heaps, priority queues. *)

module Rng = Sate_util.Rng
module Stats = Sate_util.Stats
module Heap = Sate_util.Heap
module Pqueue = Sate_util.Pqueue

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 7 in
  let exn = Invalid_argument "Rng.int: n must be positive" in
  Alcotest.check_raises "zero" exn (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "negative" exn (fun () -> ignore (Rng.int rng (-3)))

(* With n = 3 * 2^60, plain [bits mod n] maps the top quarter of the
   62-bit draw range back onto [0, 2^60), so values below 2^60 would
   appear with probability 1/2 instead of 1/3.  Rejection sampling must
   bring the fraction back to 1/3. *)
let test_rng_int_unbiased_large_n () =
  let rng = Rng.create 43 in
  let n = 3 * (1 lsl 60) in
  let trials = 4_000 in
  let low = ref 0 in
  for _ = 1 to trials do
    if Rng.int rng n < 1 lsl 60 then incr low
  done;
  let frac = float_of_int !low /. float_of_int trials in
  Alcotest.(check bool) "no modulo bias" true (Float.abs (frac -. (1.0 /. 3.0)) < 0.04)

let test_rng_float_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 11 in
  let xs = Array.init 50_000 (fun _ -> Rng.uniform rng 2.0 4.0) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 3" true (Float.abs (m -. 3.0) < 0.02)

let test_rng_normal_moments () =
  let rng = Rng.create 13 in
  let xs = Array.init 50_000 (fun _ -> Rng.normal rng ~mean:5.0 ~std:2.0) in
  Alcotest.(check bool) "mean" true (Float.abs (Stats.mean xs -. 5.0) < 0.05);
  Alcotest.(check bool) "std" true (Float.abs (Stats.std xs -. 2.0) < 0.05)

let test_rng_poisson_mean () =
  let rng = Rng.create 17 in
  let lambda = 6.5 in
  let xs = Array.init 20_000 (fun _ -> float_of_int (Rng.poisson rng ~lambda)) in
  Alcotest.(check bool) "mean near lambda" true
    (Float.abs (Stats.mean xs -. lambda) < 0.1)

let test_rng_poisson_large_lambda () =
  let rng = Rng.create 19 in
  let lambda = 120.0 in
  let xs = Array.init 5_000 (fun _ -> float_of_int (Rng.poisson rng ~lambda)) in
  Alcotest.(check bool) "normal approx mean" true
    (Float.abs (Stats.mean xs -. lambda) < 2.0)

let test_rng_exponential_mean () =
  let rng = Rng.create 23 in
  let xs = Array.init 50_000 (fun _ -> Rng.exponential rng ~rate:0.5) in
  Alcotest.(check bool) "mean near 2" true (Float.abs (Stats.mean xs -. 2.0) < 0.05)

let test_rng_split_independent () =
  let a = Rng.create 31 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_shuffle_permutation () =
  let rng = Rng.create 37 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_sample_weighted () =
  let rng = Rng.create 41 in
  let w = [| 0.0; 1.0; 3.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 20_000 do
    let i = Rng.sample_weighted rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(0);
  let ratio = float_of_int counts.(2) /. float_of_int counts.(1) in
  Alcotest.(check bool) "3:1 ratio" true (Float.abs (ratio -. 3.0) < 0.3)

let test_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" 1.25 (Stats.variance xs);
  check_float "sum" 10.0 (Stats.sum xs);
  let lo, hi = Stats.min_max xs in
  check_float "min" 1.0 lo;
  check_float "max" 4.0 hi

let test_stats_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median" 3.0 (Stats.median xs);
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stats.percentile xs 25.0)

let test_stats_percentile_rejects_nan () =
  Alcotest.check_raises "NaN sample"
    (Invalid_argument "Stats.percentile: NaN sample") (fun () ->
      ignore (Stats.percentile [| 1.0; Float.nan; 3.0 |] 50.0));
  Alcotest.check_raises "NaN p"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [| 1.0; 2.0 |] Float.nan));
  Alcotest.check_raises "NaN sample in cdf"
    (Invalid_argument "Stats.cdf_points: NaN sample") (fun () ->
      ignore (Stats.cdf_points [| Float.nan |] 4));
  (* Negative zero and infinities still sort totally under Float.compare. *)
  check_float "neg zero median" 0.0
    (Stats.percentile [| -0.0; 0.0; Float.infinity; Float.neg_infinity; 0.0 |] 50.0)

let test_stats_cv () =
  let xs = [| 2.0; 2.0; 2.0 |] in
  check_float "cv of constant" 0.0 (Stats.coefficient_of_variation xs)

let test_stats_histogram () =
  let xs = [| 0.0; 0.5; 1.0; 1.5; 2.0 |] in
  let h = Stats.histogram xs ~bins:2 in
  Alcotest.(check int) "two bins" 2 (Array.length h);
  let total = Array.fold_left (fun a (_, c) -> a + c) 0 h in
  Alcotest.(check int) "all counted" 5 total

let test_stats_cdf () =
  let xs = Array.init 100 (fun i -> float_of_int i) in
  let pts = Stats.cdf_points xs 10 in
  Alcotest.(check int) "10 points" 10 (List.length pts);
  let _, last_frac = List.nth pts 9 in
  check_float "last fraction" 1.0 last_frac

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p p) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.init 5 (fun _ -> fst (Heap.pop_exn h)) in
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] order;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_peek () =
  let h = Heap.create () in
  Heap.push h 2.0 "b";
  Heap.push h 1.0 "a";
  (match Heap.peek h with
  | Some (p, v) ->
      check_float "peek prio" 1.0 p;
      Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "length unchanged" 2 (Heap.length h)

(* Allocate a large value in a helper so the only strong reference is
   the one inside the heap. *)
let weak_of_pushed action =
  let w = Weak.create 1 in
  let v = Array.make 4096 0 in
  Weak.set w 0 (Some v);
  let h = Heap.create () in
  Heap.push h 1.0 v;
  action h;
  (h, w)

let assert_collected name w =
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) name false (Weak.check w 0)

let test_heap_pop_releases_value () =
  let h, w = weak_of_pushed (fun h -> ignore (Heap.pop h)) in
  assert_collected "popped value collectable" w;
  Alcotest.(check bool) "heap still usable" true (Heap.is_empty h);
  Heap.push h 2.0 [| 9 |];
  Alcotest.(check int) "push after pop" 1 (Heap.length h)

let test_heap_clear_releases_values () =
  let h, w = weak_of_pushed Heap.clear in
  assert_collected "cleared value collectable" w;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h)

let test_pqueue_dijkstra_order () =
  let q = Pqueue.create 10 in
  Pqueue.insert q 0 5.0;
  Pqueue.insert q 1 3.0;
  Pqueue.insert q 2 4.0;
  Pqueue.decrease q 0 1.0;
  (match Pqueue.pop_min q with
  | Some (k, p) ->
      Alcotest.(check int) "decreased key first" 0 k;
      check_float "prio" 1.0 p
  | None -> Alcotest.fail "expected pop");
  Pqueue.insert_or_decrease q 2 0.5;
  (match Pqueue.pop_min q with
  | Some (k, _) -> Alcotest.(check int) "key 2 next" 2 k
  | None -> Alcotest.fail "expected pop")

let test_pqueue_duplicate_insert () =
  let q = Pqueue.create 4 in
  Pqueue.insert q 1 1.0;
  Alcotest.check_raises "duplicate" (Invalid_argument "Pqueue.insert: key already present")
    (fun () -> Pqueue.insert q 1 2.0)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.push h x x) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare xs)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_bound_exclusive 100.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let arr = Array.of_list xs in
      let v = Stats.percentile arr p in
      let lo, hi = Stats.min_max arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let suite =
  [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng int range" `Quick test_rng_int_range;
    Alcotest.test_case "rng int invalid" `Quick test_rng_int_invalid;
    Alcotest.test_case "rng int unbiased" `Quick test_rng_int_unbiased_large_n;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng uniform mean" `Quick test_rng_uniform_mean;
    Alcotest.test_case "rng normal moments" `Quick test_rng_normal_moments;
    Alcotest.test_case "rng poisson mean" `Quick test_rng_poisson_mean;
    Alcotest.test_case "rng poisson large" `Quick test_rng_poisson_large_lambda;
    Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample weighted" `Quick test_sample_weighted;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats nan policy" `Quick test_stats_percentile_rejects_nan;
    Alcotest.test_case "stats cv" `Quick test_stats_cv;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "stats cdf" `Quick test_stats_cdf;
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap peek" `Quick test_heap_peek;
    Alcotest.test_case "heap pop releases" `Quick test_heap_pop_releases_value;
    Alcotest.test_case "heap clear releases" `Quick test_heap_clear_releases_values;
    Alcotest.test_case "pqueue order" `Quick test_pqueue_dijkstra_order;
    Alcotest.test_case "pqueue duplicate" `Quick test_pqueue_duplicate_insert;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_percentile_bounds ]
