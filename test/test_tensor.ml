(* Tests for Sate_tensor. *)

open Sate_tensor
module Rng = Sate_util.Rng

let t_of rows cols l = Tensor.of_array ~rows ~cols (Array.of_list l)

let check_tensor msg expected actual =
  Alcotest.(check bool)
    msg true
    (Tensor.same_shape expected actual
    && Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9)
         expected.Tensor.data actual.Tensor.data)

let test_matmul () =
  let a = t_of 2 3 [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ] in
  let b = t_of 3 2 [ 7.0; 8.0; 9.0; 10.0; 11.0; 12.0 ] in
  check_tensor "2x3 * 3x2" (t_of 2 2 [ 58.0; 64.0; 139.0; 154.0 ]) (Tensor.matmul a b)

let test_matmul_identity () =
  let i3 = Tensor.init 3 3 (fun r c -> if r = c then 1.0 else 0.0) in
  let a = Tensor.init 3 3 (fun r c -> float_of_int ((r * 3) + c)) in
  check_tensor "A * I = A" a (Tensor.matmul a i3)

let test_matmul_mismatch () =
  Alcotest.check_raises "inner mismatch"
    (Invalid_argument "Tensor.matmul: inner dimension mismatch") (fun () ->
      ignore (Tensor.matmul (Tensor.create 2 3) (Tensor.create 2 3)))

let test_transpose () =
  let a = t_of 2 3 [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ] in
  check_tensor "transpose" (t_of 3 2 [ 1.0; 4.0; 2.0; 5.0; 3.0; 6.0 ]) (Tensor.transpose a)

let test_elementwise () =
  let a = t_of 1 3 [ 1.0; 2.0; 3.0 ] and b = t_of 1 3 [ 4.0; 5.0; 6.0 ] in
  check_tensor "add" (t_of 1 3 [ 5.0; 7.0; 9.0 ]) (Tensor.add a b);
  check_tensor "sub" (t_of 1 3 [ -3.0; -3.0; -3.0 ]) (Tensor.sub a b);
  check_tensor "mul" (t_of 1 3 [ 4.0; 10.0; 18.0 ]) (Tensor.mul a b);
  check_tensor "scale" (t_of 1 3 [ 2.0; 4.0; 6.0 ]) (Tensor.scale 2.0 a)

let test_broadcast () =
  let m = t_of 2 2 [ 1.0; 2.0; 3.0; 4.0 ] in
  let v = t_of 1 2 [ 10.0; 20.0 ] in
  check_tensor "add_rowvec" (t_of 2 2 [ 11.0; 22.0; 13.0; 24.0 ]) (Tensor.add_rowvec m v);
  let cv = t_of 2 1 [ 2.0; 3.0 ] in
  check_tensor "col_mul" (t_of 2 2 [ 2.0; 4.0; 9.0; 12.0 ]) (Tensor.col_mul m cv)

let test_gather_scatter () =
  let m = t_of 3 2 [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ] in
  let g = Tensor.gather_rows m [| 2; 0; 2 |] in
  check_tensor "gather" (t_of 3 2 [ 5.0; 6.0; 1.0; 2.0; 5.0; 6.0 ]) g;
  let s = Tensor.scatter_add_rows g [| 0; 1; 0 |] ~rows:2 in
  check_tensor "scatter accumulates" (t_of 2 2 [ 10.0; 12.0; 1.0; 2.0 ]) s

let test_concat_split () =
  let a = t_of 2 1 [ 1.0; 2.0 ] and b = t_of 2 2 [ 3.0; 4.0; 5.0; 6.0 ] in
  let c = Tensor.concat_cols [ a; b ] in
  check_tensor "concat" (t_of 2 3 [ 1.0; 3.0; 4.0; 2.0; 5.0; 6.0 ]) c;
  match Tensor.split_cols c [ 1; 2 ] with
  | [ a'; b' ] ->
      check_tensor "split a" a a';
      check_tensor "split b" b b'
  | _ -> Alcotest.fail "expected two parts"

let test_reductions () =
  let a = t_of 2 3 [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ] in
  Alcotest.(check (float 1e-9)) "sum" 21.0 (Tensor.sum a);
  Alcotest.(check (float 1e-9)) "mean" 3.5 (Tensor.mean a);
  check_tensor "row_sums" (t_of 2 1 [ 6.0; 15.0 ]) (Tensor.row_sums a);
  Alcotest.(check (float 1e-9)) "frobenius" (sqrt 91.0) (Tensor.frobenius a)

let test_segment_softmax () =
  let scores = t_of 4 1 [ 1.0; 2.0; 5.0; 5.0 ] in
  let seg = [| 0; 0; 1; 1 |] in
  let y = Tensor.segment_softmax scores seg in
  (* Per-segment sums are 1. *)
  Alcotest.(check (float 1e-9)) "seg0 sums to 1" 1.0 (Tensor.get y 0 0 +. Tensor.get y 1 0);
  Alcotest.(check (float 1e-9)) "seg1 sums to 1" 1.0 (Tensor.get y 2 0 +. Tensor.get y 3 0);
  Alcotest.(check (float 1e-9)) "equal scores equal weight" 0.5 (Tensor.get y 2 0);
  Alcotest.(check bool) "higher score wins" true (Tensor.get y 1 0 > Tensor.get y 0 0)

let test_segment_softmax_stability () =
  (* Large scores must not overflow. *)
  let scores = t_of 2 1 [ 1000.0; 1001.0 ] in
  let y = Tensor.segment_softmax scores [| 0; 0 |] in
  Alcotest.(check bool) "finite" true (Array.for_all Float.is_finite y.Tensor.data)

let test_segment_sum () =
  let m = t_of 4 2 [ 1.0; 2.0; 10.0; 20.0; 100.0; 200.0; 0.5; 0.5 ] in
  let seg = [| 1; 0; 1; 1 |] in
  let s = Tensor.segment_sum m seg ~segments:3 in
  Alcotest.(check (float 1e-9)) "seg0 col0" 10.0 (Tensor.get s 0 0);
  Alcotest.(check (float 1e-9)) "seg1 col0" 101.5 (Tensor.get s 1 0);
  Alcotest.(check (float 1e-9)) "seg1 col1" 202.5 (Tensor.get s 1 1);
  Alcotest.(check (float 1e-9)) "empty seg2" 0.0 (Tensor.get s 2 0);
  (* Same reduction as scatter_add_rows with rows = segments. *)
  let via_scatter = Tensor.scatter_add_rows m seg ~rows:3 in
  Alcotest.(check bool) "matches scatter_add_rows" true
    (s.Tensor.data = via_scatter.Tensor.data);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Tensor.segment_sum: segment length mismatch") (fun () ->
      ignore (Tensor.segment_sum m [| 0 |] ~segments:3));
  Alcotest.check_raises "id out of range"
    (Invalid_argument "Tensor.segment_sum: segment id out of range") (fun () ->
      ignore (Tensor.segment_sum m [| 0; 1; 2; 3 |] ~segments:3))

let test_of_array_copies () =
  (* Regression: of_array used to alias the caller's array, so later
     mutation of the source silently corrupted the tensor. *)
  let src = [| 1.0; 2.0; 3.0; 4.0 |] in
  let t = Tensor.of_array ~rows:2 ~cols:2 src in
  src.(0) <- 99.0;
  Alcotest.(check (float 0.0)) "tensor unaffected by source mutation" 1.0
    (Tensor.get t 0 0);
  t.Tensor.data.(1) <- -7.0;
  Alcotest.(check (float 0.0)) "source unaffected by tensor mutation" 2.0 src.(1)

let test_segment_softmax_negative_id () =
  let scores = t_of 3 1 [ 1.0; 2.0; 3.0 ] in
  Alcotest.check_raises "negative id"
    (Invalid_argument "Tensor.segment_softmax: negative segment id") (fun () ->
      ignore (Tensor.segment_softmax scores [| 0; -1; 1 |]))

let test_xavier_bounds () =
  let rng = Rng.create 1 in
  let w = Tensor.xavier rng 100 50 in
  let bound = sqrt (6.0 /. 150.0) in
  Alcotest.(check bool) "within glorot bound" true
    (Array.for_all (fun v -> Float.abs v <= bound) w.Tensor.data)

let prop_concat_split_inverse =
  QCheck.Test.make ~name:"split inverts concat" ~count:100
    QCheck.(pair (int_range 1 5) (pair (int_range 1 4) (int_range 1 4)))
    (fun (rows, (c1, c2)) ->
      let a = Tensor.init rows c1 (fun i j -> float_of_int ((i * 10) + j)) in
      let b = Tensor.init rows c2 (fun i j -> float_of_int ((i * 100) + j)) in
      match Tensor.split_cols (Tensor.concat_cols [ a; b ]) [ c1; c2 ] with
      | [ a'; b' ] -> a'.Tensor.data = a.Tensor.data && b'.Tensor.data = b.Tensor.data
      | _ -> false)

let prop_matmul_associative_with_vector =
  QCheck.Test.make ~name:"(AB)v = A(Bv)" ~count:50
    QCheck.(int_range 1 5)
    (fun n ->
      let rng = Rng.create n in
      let a = Tensor.init n n (fun _ _ -> Rng.uniform rng (-1.0) 1.0) in
      let b = Tensor.init n n (fun _ _ -> Rng.uniform rng (-1.0) 1.0) in
      let v = Tensor.init n 1 (fun _ _ -> Rng.uniform rng (-1.0) 1.0) in
      let lhs = Tensor.matmul (Tensor.matmul a b) v in
      let rhs = Tensor.matmul a (Tensor.matmul b v) in
      Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) lhs.Tensor.data rhs.Tensor.data)

let suite =
  [ Alcotest.test_case "matmul" `Quick test_matmul;
    Alcotest.test_case "matmul identity" `Quick test_matmul_identity;
    Alcotest.test_case "matmul mismatch" `Quick test_matmul_mismatch;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "elementwise" `Quick test_elementwise;
    Alcotest.test_case "broadcast" `Quick test_broadcast;
    Alcotest.test_case "gather/scatter" `Quick test_gather_scatter;
    Alcotest.test_case "concat/split" `Quick test_concat_split;
    Alcotest.test_case "reductions" `Quick test_reductions;
    Alcotest.test_case "segment softmax" `Quick test_segment_softmax;
    Alcotest.test_case "softmax stability" `Quick test_segment_softmax_stability;
    Alcotest.test_case "segment sum" `Quick test_segment_sum;
    Alcotest.test_case "of_array copies" `Quick test_of_array_copies;
    Alcotest.test_case "softmax negative id" `Quick test_segment_softmax_negative_id;
    Alcotest.test_case "xavier bounds" `Quick test_xavier_bounds;
    QCheck_alcotest.to_alcotest prop_concat_split_inverse;
    QCheck_alcotest.to_alcotest prop_matmul_associative_with_vector ]
