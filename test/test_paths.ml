(* Tests for Sate_paths: Path, Dijkstra, Yen, grid paths, path DB. *)

module Geo = Sate_geo.Geo
module Constellation = Sate_orbit.Constellation
module Builder = Sate_topology.Builder
module Snapshot = Sate_topology.Snapshot
module Link = Sate_topology.Link
module Path = Sate_paths.Path
module Dijkstra = Sate_paths.Dijkstra
module Yen = Sate_paths.Yen
module Grid_paths = Sate_paths.Grid_paths
module Path_db = Sate_paths.Path_db

let iridium = Constellation.iridium

let iridium_snapshot () =
  let b = Builder.create iridium in
  Builder.snapshot b ~time_s:0.0

let mid_size_snapshot mode =
  let c = Constellation.mid_size ~plane_divisor:8 in
  let b = Builder.create ~config:{ Builder.default_config with Builder.cross_shell = mode } c in
  (c, Builder.snapshot b ~time_s:0.0)

let test_path_of_list () =
  let p = Path.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "hops" 2 (Path.hops p);
  Alcotest.(check int) "source" 1 (Path.source p);
  Alcotest.(check int) "destination" 3 (Path.destination p);
  Alcotest.(check bool) "loopless" true (Path.is_loopless p);
  Alcotest.check_raises "single node"
    (Invalid_argument "Path.of_list: need at least two nodes") (fun () ->
      ignore (Path.of_list [ 1 ]));
  Alcotest.check_raises "repeat" (Invalid_argument "Path.of_list: repeated node")
    (fun () -> ignore (Path.of_list [ 1; 1; 2 ]))

let test_path_loop_detection () =
  Alcotest.(check bool) "loop detected" false (Path.is_loopless (Path.of_list [ 1; 2; 1 ]))

let test_dijkstra_reachable () =
  let s = iridium_snapshot () in
  match Dijkstra.shortest s ~src:0 ~dst:40 with
  | Some p ->
      Alcotest.(check int) "starts at src" 0 (Path.source p);
      Alcotest.(check int) "ends at dst" 40 (Path.destination p);
      Alcotest.(check bool) "valid" true (Path.valid_in s p)
  | None -> Alcotest.fail "iridium is connected"

let test_dijkstra_hops_optimal () =
  let s = iridium_snapshot () in
  (* BFS distance must match Dijkstra with hop weights. *)
  let d = Dijkstra.distances s ~src:0 in
  match Dijkstra.shortest s ~src:0 ~dst:30 with
  | Some p -> Alcotest.(check (float 1e-9)) "hop count matches" d.(30) (float_of_int (Path.hops p))
  | None -> Alcotest.fail "unreachable"

let test_dijkstra_banned () =
  let s = iridium_snapshot () in
  let via = match Dijkstra.shortest s ~src:0 ~dst:2 with
    | Some p -> Path.to_list p
    | None -> Alcotest.fail "unreachable"
  in
  (* Ban intermediate nodes; new route must avoid them. *)
  let banned = List.filter (fun n -> n <> 0 && n <> 2) via in
  match Dijkstra.shortest ~banned_nodes:(fun n -> List.mem n banned) s ~src:0 ~dst:2 with
  | Some p ->
      List.iter
        (fun n -> Alcotest.(check bool) "avoids banned" false (List.mem n banned))
        (Path.to_list p)
  | None -> () (* disconnection is acceptable *)

let test_dijkstra_km_weight () =
  let s = iridium_snapshot () in
  match Dijkstra.shortest ~weight:Dijkstra.Km s ~src:0 ~dst:7 with
  | Some p ->
      Alcotest.(check bool) "length positive" true (Path.length_km s p > 0.0);
      Alcotest.(check bool) "delay positive" true (Path.delay_ms s p > 0.0)
  | None -> Alcotest.fail "unreachable"

(* Weighted diamond whose cheap edges are discovered late: node 1 is
   queued at 10 then improved to 5 via node 2, and node 3 is queued at
   102 then improved to 7 — both keys decrease after the node already
   sits in the frontier, so a lazy-deletion heap would pop stale
   entries here and only a staleness guard keeps expansion correct. *)
let diamond_snapshot () =
  let pos =
    Array.init 4 (fun i -> { Sate_geo.Geo.x = float_of_int i; y = 0.0; z = 0.0 })
  in
  let link u v length_km =
    { Link.u; v; kind = Link.Intra_orbit; capacity_mbps = 100.0; length_km }
  in
  Snapshot.make ~time_s:0.0 ~num_sats:4 ~sat_positions:pos ~relay_positions:[||]
    ~links:
      [ link 0 1 10.0; link 0 2 2.0; link 1 2 3.0; link 1 3 2.0; link 2 3 100.0 ]

let test_dijkstra_decrease_after_insert () =
  let s = diamond_snapshot () in
  let d = Dijkstra.distances ~weight:Dijkstra.Km s ~src:0 in
  Alcotest.(check (array (float 1e-9))) "km distances" [| 0.0; 5.0; 2.0; 7.0 |] d;
  match Dijkstra.shortest ~weight:Dijkstra.Km s ~src:0 ~dst:3 with
  | Some p ->
      Alcotest.(check (list int)) "takes the detour" [ 0; 2; 1; 3 ] (Path.to_list p);
      Alcotest.(check (float 1e-9)) "length" 7.0 (Path.length_km s p)
  | None -> Alcotest.fail "reachable"

let test_yen_properties () =
  let s = iridium_snapshot () in
  let k = 5 in
  let paths = Yen.k_shortest s ~src:0 ~dst:25 ~k in
  Alcotest.(check bool) "got some paths" true (List.length paths >= 1);
  Alcotest.(check bool) "at most k" true (List.length paths <= k);
  (* All valid, loopless, correct endpoints, unique. *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "valid" true (Path.valid_in s p);
      Alcotest.(check bool) "loopless" true (Path.is_loopless p);
      Alcotest.(check int) "src" 0 (Path.source p);
      Alcotest.(check int) "dst" 25 (Path.destination p))
    paths;
  let uniq = List.sort_uniq Path.compare paths in
  Alcotest.(check int) "unique" (List.length paths) (List.length uniq);
  (* Non-decreasing hop counts. *)
  let hops = List.map Path.hops paths in
  Alcotest.(check (list int)) "sorted by cost" (List.sort compare hops) hops

let test_yen_first_is_shortest () =
  let s = iridium_snapshot () in
  match (Yen.k_shortest s ~src:3 ~dst:50 ~k:3, Dijkstra.shortest s ~src:3 ~dst:50) with
  | p1 :: _, Some sp ->
      Alcotest.(check int) "first path is shortest" (Path.hops sp) (Path.hops p1)
  | _ -> Alcotest.fail "expected paths"

let test_grid_intra_candidates () =
  (* Iridium: 6 planes x 11 slots.  From (0,0) to (2,3): dx=2, dy=3,
     C(5,2) = 10 staircases. *)
  let src = Constellation.id_of_coord iridium { Constellation.shell = 0; plane = 0; slot = 0 } in
  let dst = Constellation.id_of_coord iridium { Constellation.shell = 0; plane = 2; slot = 3 } in
  let cands = Grid_paths.intra_shell_candidates iridium ~src ~dst ~limit:100 in
  Alcotest.(check int) "C(5,2) staircases" 10 (List.length cands);
  List.iter
    (fun p ->
      Alcotest.(check int) "min hops" 5 (Path.hops p);
      Alcotest.(check int) "src" src (Path.source p);
      Alcotest.(check int) "dst" dst (Path.destination p);
      Alcotest.(check bool) "loopless" true (Path.is_loopless p))
    cands;
  let uniq = List.sort_uniq Path.compare cands in
  Alcotest.(check int) "unique" 10 (List.length uniq)

let test_grid_wraparound () =
  (* Wrap in the plane dimension: plane 5 -> plane 0 is one hop. *)
  let src = Constellation.id_of_coord iridium { Constellation.shell = 0; plane = 5; slot = 0 } in
  let dst = Constellation.id_of_coord iridium { Constellation.shell = 0; plane = 0; slot = 0 } in
  let cands = Grid_paths.intra_shell_candidates iridium ~src ~dst ~limit:10 in
  match cands with
  | [ p ] -> Alcotest.(check int) "one hop across the seam" 1 (Path.hops p)
  | _ -> Alcotest.fail "expected exactly one minimal path"

let test_grid_k_shortest_same_shell () =
  let s = iridium_snapshot () in
  let paths = Grid_paths.k_shortest iridium s ~src:0 ~dst:35 ~k:4 in
  Alcotest.(check bool) "paths found" true (List.length paths >= 1);
  List.iter
    (fun p ->
      Alcotest.(check bool) "valid" true (Path.valid_in s p);
      Alcotest.(check bool) "loopless" true (Path.is_loopless p);
      Alcotest.(check int) "src" 0 (Path.source p);
      Alcotest.(check int) "dst" 35 (Path.destination p))
    paths

let test_grid_k_shortest_matches_optimal_hops () =
  let s = iridium_snapshot () in
  List.iter
    (fun (src, dst) ->
      match (Grid_paths.k_shortest iridium s ~src ~dst ~k:1, Dijkstra.shortest s ~src ~dst) with
      | p :: _, Some sp ->
          Alcotest.(check int)
            (Printf.sprintf "grid optimal %d->%d" src dst)
            (Path.hops sp) (Path.hops p)
      | [], None -> ()
      | [], Some _ -> Alcotest.fail "grid found nothing but Dijkstra did"
      | _ :: _, None -> Alcotest.fail "grid found a path where none exists")
    [ (0, 12); (5, 60); (11, 44); (2, 3) ]

let test_grid_cross_shell_laser () =
  let c, s = mid_size_snapshot Builder.Lasers in
  let shells = Constellation.shells c in
  let shell1_start = Sate_orbit.Shell.size shells.(0) in
  let src = 0 and dst = shell1_start + 50 in
  let paths = Grid_paths.k_shortest c s ~src ~dst ~k:3 in
  Alcotest.(check bool) "cross-shell paths found" true (List.length paths >= 1);
  List.iter
    (fun p ->
      Alcotest.(check bool) "valid" true (Path.valid_in s p);
      Alcotest.(check int) "src" src (Path.source p);
      Alcotest.(check int) "dst" dst (Path.destination p))
    paths

let test_grid_cross_shell_relay () =
  let c, s = mid_size_snapshot Builder.Ground_relays in
  let shells = Constellation.shells c in
  let shell1_start = Sate_orbit.Shell.size shells.(0) in
  let src = 3 and dst = shell1_start + 20 in
  let paths = Grid_paths.k_shortest c s ~src ~dst ~k:3 in
  Alcotest.(check bool) "bent-pipe paths found" true (List.length paths >= 1);
  List.iter
    (fun p -> Alcotest.(check bool) "valid" true (Path.valid_in s p))
    paths

let test_path_db_compute_and_update () =
  let b = Builder.create iridium in
  let s0 = Builder.snapshot b ~time_s:0.0 in
  let pairs = [ (0, 20); (5, 40); (11, 60) ] in
  let db = Path_db.compute iridium s0 ~pairs ~k:3 in
  let n_pairs, n_paths = Path_db.stats db in
  Alcotest.(check int) "three pairs" 3 n_pairs;
  Alcotest.(check bool) "paths stored" true (n_paths >= 3);
  (* Unchanged topology: update recomputes nothing. *)
  let _, recomputed = Path_db.update db s0 in
  Alcotest.(check int) "no recompute on same snapshot" 0 recomputed;
  (* Add a pair. *)
  let db2 = Path_db.add_pairs db s0 [ (1, 2) ] in
  Alcotest.(check int) "four pairs" 4 (fst (Path_db.stats db2));
  Alcotest.(check bool) "existing untouched" true
    (Path_db.paths db2 ~src:0 ~dst:20 = Path_db.paths db ~src:0 ~dst:20)

let test_path_db_update_after_break () =
  let b = Builder.create iridium in
  let s0 = Builder.snapshot b ~time_s:0.0 in
  let pairs = [ (0, 20); (5, 40) ] in
  let db = Path_db.compute iridium s0 ~pairs ~k:3 in
  (* Remove the links of the first stored path of pair (0, 20). *)
  let victim = List.hd (Path_db.paths db ~src:0 ~dst:20) in
  let nodes = Path.to_list victim in
  let rec pairs_of = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs_of rest
    | _ -> []
  in
  let degraded = Snapshot.remove_links s0 (pairs_of nodes) in
  let db', recomputed = Path_db.update db degraded in
  Alcotest.(check bool) "at least one pair recomputed" true (recomputed >= 1);
  List.iter
    (fun (src, dst) ->
      List.iter
        (fun p -> Alcotest.(check bool) "paths valid after update" true (Path.valid_in degraded p))
        (Path_db.paths db' ~src ~dst))
    pairs

let test_link_indices () =
  let s = iridium_snapshot () in
  match Dijkstra.shortest s ~src:0 ~dst:10 with
  | Some p ->
      let links = Path.link_indices s p in
      Alcotest.(check int) "one index per hop" (Path.hops p) (Array.length links);
      Array.iter
        (fun li ->
          Alcotest.(check bool) "index in range" true
            (li >= 0 && li < Array.length s.Snapshot.links))
        links
  | None -> Alcotest.fail "unreachable"

let prop_grid_candidates_minimal =
  (* All staircase candidates have exactly the wrapped Manhattan hop
     count. *)
  QCheck.Test.make ~name:"staircase candidates are minimum-hop" ~count:100
    QCheck.(pair (int_bound 65) (int_bound 65))
    (fun (src, dst) ->
      QCheck.assume (src <> dst);
      let cands = Grid_paths.intra_shell_candidates iridium ~src ~dst ~limit:32 in
      match cands with
      | [] -> false
      | first :: _ ->
          let h = Path.hops first in
          List.for_all (fun p -> Path.hops p = h) cands)

let prop_yen_loopless =
  QCheck.Test.make ~name:"yen paths loopless and valid" ~count:40
    QCheck.(pair (int_bound 65) (int_bound 65))
    (fun (src, dst) ->
      QCheck.assume (src <> dst);
      let s = iridium_snapshot () in
      Yen.k_shortest s ~src ~dst ~k:3
      |> List.for_all (fun p -> Path.is_loopless p && Path.valid_in s p))

let suite =
  [ Alcotest.test_case "path of_list" `Quick test_path_of_list;
    Alcotest.test_case "loop detection" `Quick test_path_loop_detection;
    Alcotest.test_case "dijkstra reachable" `Quick test_dijkstra_reachable;
    Alcotest.test_case "dijkstra optimal" `Quick test_dijkstra_hops_optimal;
    Alcotest.test_case "dijkstra banned" `Quick test_dijkstra_banned;
    Alcotest.test_case "dijkstra km" `Quick test_dijkstra_km_weight;
    Alcotest.test_case "dijkstra decrease-after-insert" `Quick
      test_dijkstra_decrease_after_insert;
    Alcotest.test_case "yen properties" `Quick test_yen_properties;
    Alcotest.test_case "yen first shortest" `Quick test_yen_first_is_shortest;
    Alcotest.test_case "grid intra candidates" `Quick test_grid_intra_candidates;
    Alcotest.test_case "grid wraparound" `Quick test_grid_wraparound;
    Alcotest.test_case "grid same shell" `Quick test_grid_k_shortest_same_shell;
    Alcotest.test_case "grid optimal hops" `Quick test_grid_k_shortest_matches_optimal_hops;
    Alcotest.test_case "grid cross-shell laser" `Quick test_grid_cross_shell_laser;
    Alcotest.test_case "grid cross-shell relay" `Quick test_grid_cross_shell_relay;
    Alcotest.test_case "path db compute/update" `Quick test_path_db_compute_and_update;
    Alcotest.test_case "path db after break" `Quick test_path_db_update_after_break;
    Alcotest.test_case "link indices" `Quick test_link_indices;
    QCheck_alcotest.to_alcotest prop_grid_candidates_minimal;
    QCheck_alcotest.to_alcotest prop_yen_loopless ]
