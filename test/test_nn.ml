(* Tests for Sate_nn: autodiff gradient checks against finite
   differences, layers, optimizer convergence. *)

open Sate_tensor
module A = Sate_nn.Autodiff
module Layers = Sate_nn.Layers
module Optimizer = Sate_nn.Optimizer
module Rng = Sate_util.Rng

(* Central finite-difference gradient of [f] wrt leaf [x], compared
   against the autodiff gradient. *)
let gradient_check ?(eps = 1e-5) ?(tol = 1e-3) name build x_data =
  let x = A.leaf (Tensor.copy x_data) in
  let loss = build x in
  A.backward loss;
  let analytic = Tensor.copy x.A.grad in
  Array.iteri
    (fun i _ ->
      let orig = x_data.Tensor.data.(i) in
      let eval v =
        let x' = A.leaf (Tensor.copy x_data) in
        x'.A.value.Tensor.data.(i) <- v;
        A.scalar_value (build x')
      in
      let numeric = (eval (orig +. eps) -. eval (orig -. eps)) /. (2.0 *. eps) in
      let a = analytic.Tensor.data.(i) in
      if Float.abs (numeric -. a) > tol *. Float.max 1.0 (Float.abs numeric) then
        Alcotest.failf "%s: grad[%d] analytic=%.6f numeric=%.6f" name i a numeric)
    x_data.Tensor.data

let rand_tensor seed rows cols =
  let rng = Rng.create seed in
  Tensor.init rows cols (fun _ _ -> Rng.uniform rng (-1.0) 1.0)

let test_grad_add_mul () =
  gradient_check "sum((x + x) * x)"
    (fun x -> A.sum (A.mul (A.add x x) x))
    (rand_tensor 1 3 2)

let test_grad_matmul () =
  let w = rand_tensor 2 4 3 in
  gradient_check "sum(x W)" (fun x -> A.sum (A.matmul x (A.const w))) (rand_tensor 3 2 4)

let test_grad_matmul_left () =
  let x = rand_tensor 4 2 3 in
  gradient_check "sum(X w) wrt w"
    (fun w -> A.sum (A.matmul (A.const x) w))
    (rand_tensor 5 3 2)

let test_grad_leaky_relu () =
  gradient_check "sum(leaky_relu(x)^2)"
    (fun x -> A.sum (A.square (A.leaky_relu x)))
    (rand_tensor 6 3 3)

let test_grad_sigmoid () =
  gradient_check "sum(sigmoid(x))" (fun x -> A.sum (A.sigmoid x)) (rand_tensor 7 2 3)

let test_grad_exp_clamp () =
  gradient_check "sum(exp(clamp(x)))"
    (fun x -> A.sum (A.exp (A.clamp_max 0.5 x)))
    (rand_tensor 8 2 3)

let test_grad_gather () =
  gradient_check "sum(gather(x)^2)"
    (fun x -> A.sum (A.square (A.gather_rows x [| 0; 2; 0; 1 |])))
    (rand_tensor 9 3 2)

let test_grad_scatter () =
  gradient_check "sum(scatter(x)^2)"
    (fun x -> A.sum (A.square (A.scatter_add_rows x [| 1; 0; 1 |] ~rows:2)))
    (rand_tensor 10 3 2)

let test_grad_segment_softmax () =
  gradient_check "softmax attention"
    (fun x ->
      let alpha = A.segment_softmax x [| 0; 0; 1; 1; 1 |] in
      A.sum (A.mul alpha (A.const (rand_tensor 11 5 1))))
    (rand_tensor 12 5 1)

let test_grad_col_mul () =
  let v = rand_tensor 13 4 1 in
  gradient_check "col_mul wrt matrix"
    (fun x -> A.sum (A.col_mul x (A.const v)))
    (rand_tensor 14 4 3);
  let m = rand_tensor 15 4 3 in
  gradient_check "col_mul wrt vector"
    (fun v -> A.sum (A.square (A.col_mul (A.const m) v)))
    (rand_tensor 16 4 1)

let test_grad_add_rowvec () =
  let m = rand_tensor 17 3 4 in
  gradient_check "add_rowvec wrt vector"
    (fun v -> A.sum (A.square (A.add_rowvec (A.const m) v)))
    (rand_tensor 18 1 4)

let test_grad_concat () =
  gradient_check "concat_cols"
    (fun x -> A.sum (A.square (A.concat_cols [ x; A.const (rand_tensor 19 3 2) ])))
    (rand_tensor 20 3 2)

let test_grad_row_sums () =
  gradient_check "row_sums" (fun x -> A.sum (A.square (A.row_sums x))) (rand_tensor 21 3 4)

let test_grad_div_scalar () =
  gradient_check "div_scalar"
    (fun x -> A.sum (A.div_scalar x (A.scalar 2.5)))
    (rand_tensor 22 2 3)

let test_grad_mean () =
  gradient_check "mean" (fun x -> A.mean (A.square x)) (rand_tensor 23 3 3)

let test_grad_composite_attention () =
  (* A miniature GAT-like computation: the composite must also pass. *)
  let w = rand_tensor 24 2 2 in
  let src = [| 0; 1; 2; 0 |] and dst = [| 1; 2; 0; 2 |] in
  gradient_check ~tol:5e-3 "mini attention block"
    (fun x ->
      let h = A.matmul x (A.const w) in
      let hs = A.gather_rows h src in
      let hd = A.gather_rows h dst in
      let scores = A.leaky_relu (A.row_sums (A.mul hs hd)) in
      let alpha = A.segment_softmax scores dst in
      let agg = A.scatter_add_rows (A.col_mul hs alpha) dst ~rows:3 in
      A.sum (A.square agg))
    (rand_tensor 25 3 2)

let test_backward_requires_scalar () =
  let x = A.leaf (rand_tensor 26 2 2) in
  Alcotest.check_raises "non-scalar root"
    (Invalid_argument "Autodiff.backward: root must be scalar") (fun () ->
      A.backward x)

let test_linear_shapes () =
  let rng = Rng.create 27 in
  let l = Layers.linear rng ~in_dim:4 ~out_dim:3 in
  let y = Layers.forward_linear l (A.const (rand_tensor 28 5 4)) in
  Alcotest.(check (pair int int)) "output shape" (5, 3) (A.shape y)

let test_mlp_shapes () =
  let rng = Rng.create 29 in
  let m = Layers.mlp rng ~dims:[ 4; 8; 2 ] in
  let y = Layers.forward_mlp m (A.const (rand_tensor 30 3 4)) in
  Alcotest.(check (pair int int)) "output shape" (3, 2) (A.shape y);
  Alcotest.(check int) "param count" ((4 * 8) + 8 + (8 * 2) + 2)
    (Layers.num_parameters (Layers.mlp_params m))

let test_dump_load_roundtrip () =
  let rng = Rng.create 31 in
  let m1 = Layers.mlp rng ~dims:[ 3; 5; 1 ] in
  let m2 = Layers.mlp (Rng.create 99) ~dims:[ 3; 5; 1 ] in
  Layers.load_params (Layers.mlp_params m2) (Layers.dump_params (Layers.mlp_params m1));
  let x = rand_tensor 32 2 3 in
  let y1 = Layers.forward_mlp m1 (A.const x) and y2 = Layers.forward_mlp m2 (A.const x) in
  Alcotest.(check bool) "identical outputs" true (y1.A.value.Tensor.data = y2.A.value.Tensor.data)

let test_segment_softmax_negative_id () =
  let x = A.leaf (rand_tensor 35 3 1) in
  Alcotest.check_raises "negative id"
    (Invalid_argument "Autodiff.segment_softmax: negative segment id") (fun () ->
      ignore (A.segment_softmax x [| 0; -2; 1 |]))

let test_adam_minimises_quadratic () =
  (* Minimise ||x - target||^2. *)
  let target = rand_tensor 33 2 3 in
  let x = A.leaf (Tensor.create 2 3) in
  let opt = Optimizer.adam ~lr:0.05 [ x ] in
  for _ = 1 to 500 do
    let loss = A.sum (A.square (A.sub x (A.const target))) in
    A.backward loss;
    Optimizer.step opt
  done;
  let err = Tensor.frobenius (Tensor.sub x.A.value target) in
  Alcotest.(check bool) "converged" true (err < 0.02)

let test_adam_clipping () =
  (* A huge gradient must not produce a huge first step. *)
  let x = A.leaf (Tensor.of_array ~rows:1 ~cols:1 [| 0.0 |]) in
  let opt = Optimizer.adam ~lr:0.1 ~clip_norm:1.0 [ x ] in
  let loss = A.scale 1e9 (A.sum x) in
  A.backward loss;
  Optimizer.step opt;
  Alcotest.(check bool) "bounded step" true (Float.abs x.A.value.Tensor.data.(0) <= 0.11)

let test_grad_accumulation_zeroed () =
  let x = A.leaf (rand_tensor 34 1 2) in
  let opt = Optimizer.adam [ x ] in
  let loss = A.sum x in
  A.backward loss;
  Optimizer.step opt;
  Alcotest.(check (float 0.0)) "grads zeroed after step" 0.0 (Tensor.sum x.A.grad)

let suite =
  [ Alcotest.test_case "grad add/mul" `Quick test_grad_add_mul;
    Alcotest.test_case "grad matmul right" `Quick test_grad_matmul;
    Alcotest.test_case "grad matmul left" `Quick test_grad_matmul_left;
    Alcotest.test_case "grad leaky_relu" `Quick test_grad_leaky_relu;
    Alcotest.test_case "grad sigmoid" `Quick test_grad_sigmoid;
    Alcotest.test_case "grad exp/clamp" `Quick test_grad_exp_clamp;
    Alcotest.test_case "grad gather" `Quick test_grad_gather;
    Alcotest.test_case "grad scatter" `Quick test_grad_scatter;
    Alcotest.test_case "grad segment softmax" `Quick test_grad_segment_softmax;
    Alcotest.test_case "segment softmax negative id" `Quick test_segment_softmax_negative_id;
    Alcotest.test_case "grad col_mul" `Quick test_grad_col_mul;
    Alcotest.test_case "grad add_rowvec" `Quick test_grad_add_rowvec;
    Alcotest.test_case "grad concat" `Quick test_grad_concat;
    Alcotest.test_case "grad row_sums" `Quick test_grad_row_sums;
    Alcotest.test_case "grad div_scalar" `Quick test_grad_div_scalar;
    Alcotest.test_case "grad mean" `Quick test_grad_mean;
    Alcotest.test_case "grad attention composite" `Quick test_grad_composite_attention;
    Alcotest.test_case "backward scalar only" `Quick test_backward_requires_scalar;
    Alcotest.test_case "linear shapes" `Quick test_linear_shapes;
    Alcotest.test_case "mlp shapes" `Quick test_mlp_shapes;
    Alcotest.test_case "dump/load" `Quick test_dump_load_roundtrip;
    Alcotest.test_case "adam quadratic" `Quick test_adam_minimises_quadratic;
    Alcotest.test_case "adam clipping" `Quick test_adam_clipping;
    Alcotest.test_case "grads zeroed" `Quick test_grad_accumulation_zeroed ]
