let () =
  Alcotest.run "sate"
    [ ("util", Test_util.suite);
      ("geo", Test_geo.suite);
      ("orbit", Test_orbit.suite);
      ("topology", Test_topology.suite);
      ("traffic", Test_traffic.suite);
      ("paths", Test_paths.suite);
      ("lp", Test_lp.suite);
      ("tensor", Test_tensor.suite);
      ("nn", Test_nn.suite);
      ("te", Test_te.suite);
      ("gnn", Test_gnn.suite);
      ("pruning", Test_pruning.suite);
      ("baselines", Test_baselines.suite);
      ("par", Test_par.suite);
      ("core", Test_core.suite);
      ("check", Test_check.suite);
      ("integration", Test_integration.suite);
      ("extensions", Test_extensions.suite) ]
