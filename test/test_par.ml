(* Determinism tests for the Sate_par domain pool: every parallel
   kernel must produce bit-identical results for any pool size,
   including the sequential (size-1) fallback. *)

open Sate_tensor
module Par = Sate_par.Par
module Rng = Sate_util.Rng
module Constellation = Sate_orbit.Constellation
module Builder = Sate_topology.Builder
module Path = Sate_paths.Path
module Path_db = Sate_paths.Path_db
module A = Sate_nn.Autodiff
module Te_graph = Sate_gnn.Te_graph
module Gat = Sate_gnn.Gat
module Scenario = Sate_core.Scenario
module Method = Sate_core.Method
module Online = Sate_core.Online

(* Bitwise tensor equality: Int64 payload comparison distinguishes
   -0.0 from 0.0 and any rounding difference a tolerance would hide. *)
let check_bits_equal name (a : Tensor.t) (b : Tensor.t) =
  Alcotest.(check (pair int int)) (name ^ " shape") (a.Tensor.rows, a.Tensor.cols)
    (b.Tensor.rows, b.Tensor.cols);
  Array.iteri
    (fun i x ->
      let y = b.Tensor.data.(i) in
      if Int64.bits_of_float x <> Int64.bits_of_float y then
        Alcotest.failf "%s: element %d differs bitwise (%h vs %h)" name i x y)
    a.Tensor.data

let pool_sizes = [ 1; 2; 4 ]

(* Run [f] under each pool size and check all results are bitwise
   equal to the size-1 (sequential-fallback) baseline. *)
let check_pools name f =
  let baseline = Par.with_domains 1 f in
  List.iter
    (fun n ->
      let got = Par.with_domains n f in
      check_bits_equal (Printf.sprintf "%s (pool %d)" name n) baseline got)
    pool_sizes

let random_tensor rng rows cols =
  Tensor.init rows cols (fun _ _ -> Rng.uniform rng (-2.0) 2.0)

(* 97*53*61 flops > 65536, so the parallel path is exercised. *)
let test_matmul_deterministic () =
  let rng = Rng.create 11 in
  let a = random_tensor rng 97 53 in
  let b = random_tensor rng 53 61 in
  check_pools "matmul" (fun () -> Tensor.matmul a b)

(* 3000 rows > the 2048-row gate. *)
let test_segment_softmax_deterministic () =
  let rng = Rng.create 12 in
  let m = 3000 and segments = 40 in
  let scores = random_tensor rng m 1 in
  let seg = Array.init m (fun i -> (i * 7) mod segments) in
  check_pools "segment_softmax" (fun () -> Tensor.segment_softmax scores seg)

(* 3000*8 cells > the 16384-cell gate. *)
let test_segment_sum_deterministic () =
  let rng = Rng.create 13 in
  let m = 3000 and segments = 50 in
  let x = random_tensor rng m 8 in
  let seg = Array.init m (fun i -> (i * 3) mod segments) in
  check_pools "segment_sum" (fun () -> Tensor.segment_sum x seg ~segments)

let test_map_array_matches_sequential () =
  let input = Array.init 1000 (fun i -> i) in
  let expected = Array.map (fun i -> (i * i) + 1) input in
  List.iter
    (fun n ->
      let got = Par.with_domains n (fun () -> Par.map_array (fun i -> (i * i) + 1) input) in
      Alcotest.(check (array int)) (Printf.sprintf "map_array pool %d" n) expected got)
    pool_sizes

let test_parallel_for_covers_all_indices () =
  List.iter
    (fun n ->
      let hits = Array.make 997 0 in
      Par.with_domains n (fun () ->
          Par.parallel_for 997 (fun i -> hits.(i) <- hits.(i) + 1));
      Alcotest.(check bool) (Printf.sprintf "each index once (pool %d)" n) true
        (Array.for_all (fun h -> h = 1) hits))
    pool_sizes

let test_map_reduce_sum () =
  let n = 10001 in
  let expected = n * (n - 1) / 2 in
  List.iter
    (fun d ->
      let got =
        Par.with_domains d (fun () ->
            Par.map_reduce ~map:(fun i -> i) ~combine:( + ) ~init:0 n)
      in
      Alcotest.(check int) (Printf.sprintf "map_reduce pool %d" d) expected got)
    pool_sizes

let test_exception_propagates_and_pool_survives () =
  Par.with_domains 2 (fun () ->
      Alcotest.check_raises "worker exception reaches caller"
        (Failure "boom at 321") (fun () ->
          Par.parallel_for 1000 (fun i ->
              if i = 321 then failwith "boom at 321"));
      (* The pool must stay usable after a failed task. *)
      let out = Par.map_array (fun i -> i * 2) (Array.init 64 (fun i -> i)) in
      Alcotest.(check (array int)) "pool reusable after failure"
        (Array.init 64 (fun i -> i * 2)) out)

let iridium_pairs () =
  (* A deterministic spread of pairs, with duplicates to exercise
     dedup inside Path_db.compute. *)
  let n = Constellation.size Constellation.iridium in
  let pairs = List.init 24 (fun i -> (i mod n, (i * 13 + 5) mod n)) in
  pairs @ [ List.hd pairs ]

let path_db_fingerprint db =
  Array.to_list (Path_db.pairs db)
  |> List.map (fun (src, dst) ->
         let paths = Path_db.paths db ~src ~dst in
         ((src, dst), List.map Path.to_list paths))

let test_path_db_deterministic () =
  let b = Builder.create Constellation.iridium in
  let snap = Builder.snapshot b ~time_s:0.0 in
  let pairs = iridium_pairs () in
  let baseline =
    Par.with_domains 1 (fun () ->
        path_db_fingerprint (Path_db.compute Constellation.iridium snap ~pairs ~k:4))
  in
  List.iter
    (fun n ->
      let got =
        Par.with_domains n (fun () ->
            path_db_fingerprint (Path_db.compute Constellation.iridium snap ~pairs ~k:4))
      in
      Alcotest.(check bool) (Printf.sprintf "path db pool %d" n) true (baseline = got))
    pool_sizes

let test_gat_forward_parallel_deterministic () =
  let rng = Rng.create 21 in
  let dim = 8 and heads = 4 in
  let n_src = 30 and n_dst = 20 and m = 90 in
  let gat = Gat.create (Rng.split rng) ~dim ~heads in
  let x_src = A.leaf (random_tensor rng n_src dim) in
  let x_dst = A.leaf (random_tensor rng n_dst dim) in
  let edges =
    { Te_graph.src = Array.init m (fun i -> (i * 11) mod n_src);
      Te_graph.dst = Array.init m (fun i -> (i * 7) mod n_dst);
      Te_graph.feat = random_tensor rng m 1 }
  in
  let run () = (Gat.forward ~parallel:true gat ~x_src ~x_dst ~edges).A.value in
  let sequential = (Gat.forward gat ~x_src ~x_dst ~edges).A.value in
  check_bits_equal "gat parallel vs sequential" sequential
    (Par.with_domains 4 run);
  check_pools "gat forward" run

let small_scenario () =
  Scenario.create
    ~config:{ Scenario.default_config with Scenario.lambda = 4.0; warmup_s = 10.0 }
    ()

let report_fingerprint (r : Online.report) =
  (r.Online.method_name, r.Online.mean_satisfied, r.Online.per_tick,
   r.Online.recomputations)

let test_evaluate_all_matches_sequential () =
  let methods = [ Method.Ecmp_wf; Method.Satellite_routing ] in
  (* Pin latency so reports do not depend on wall-clock timing. *)
  let cadence = function
    | Method.Ecmp_wf -> Some 54000.0
    | Method.Satellite_routing -> Some 0.0
    | _ -> None
  in
  let sequential =
    List.map
      (fun m ->
        let s = small_scenario () in
        report_fingerprint
          (Online.evaluate ?latency_override_ms:(cadence m) ~duration_s:3.0 s m))
      methods
  in
  List.iter
    (fun n ->
      let got =
        Par.with_domains n (fun () ->
            Online.evaluate_all ~cadence_ms:cadence ~duration_s:3.0
              ~scenario_of:(fun _ -> small_scenario ())
              methods)
        |> List.map report_fingerprint
      in
      Alcotest.(check bool) (Printf.sprintf "evaluate_all pool %d" n) true
        (sequential = got))
    pool_sizes

let test_chunking_properties () =
  (* parallel_for with n = 0 and n = 1 must be safe under any pool. *)
  Par.with_domains 3 (fun () ->
      Par.parallel_for 0 (fun _ -> Alcotest.fail "called on empty range");
      let hit = ref false in
      Par.parallel_for 1 (fun i ->
          Alcotest.(check int) "index" 0 i;
          hit := true);
      Alcotest.(check bool) "singleton ran" true !hit;
      (* Nested submission falls back to inline execution, no deadlock. *)
      let nested = ref (-1) in
      Par.parallel_for 4 (fun i ->
          if i = 2 then Par.parallel_for 3 (fun j -> if j = 1 then nested := i));
      Alcotest.(check int) "nested inline" 2 !nested)

let suite =
  [ Alcotest.test_case "matmul deterministic" `Quick test_matmul_deterministic;
    Alcotest.test_case "segment softmax deterministic" `Quick
      test_segment_softmax_deterministic;
    Alcotest.test_case "segment sum deterministic" `Quick
      test_segment_sum_deterministic;
    Alcotest.test_case "map_array" `Quick test_map_array_matches_sequential;
    Alcotest.test_case "parallel_for coverage" `Quick
      test_parallel_for_covers_all_indices;
    Alcotest.test_case "map_reduce sum" `Quick test_map_reduce_sum;
    Alcotest.test_case "exception propagation" `Quick
      test_exception_propagates_and_pool_survives;
    Alcotest.test_case "path db deterministic" `Quick test_path_db_deterministic;
    Alcotest.test_case "gat parallel deterministic" `Quick
      test_gat_forward_parallel_deterministic;
    Alcotest.test_case "evaluate_all deterministic" `Slow
      test_evaluate_all_matches_sequential;
    Alcotest.test_case "chunking edge cases" `Quick test_chunking_properties ]
