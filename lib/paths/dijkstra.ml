module Snapshot = Sate_topology.Snapshot
module Link = Sate_topology.Link
module Pqueue = Sate_util.Pqueue

type weight = Hops | Km

let link_cost weight (l : Link.t) =
  match weight with Hops -> 1.0 | Km -> l.Link.length_km

let shortest ?(weight = Hops) ?(banned_nodes = fun _ -> false)
    ?(banned_links = fun _ -> false) snap ~src ~dst =
  let n = Snapshot.num_nodes snap in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Dijkstra.shortest: node out of range";
  if banned_nodes src || banned_nodes dst then None
  else begin
    let dist = Array.make n Float.infinity in
    let prev = Array.make n (-1) in
    let q = Pqueue.create n in
    dist.(src) <- 0.0;
    Pqueue.insert q src 0.0;
    let finished = ref false in
    while (not !finished) && not (Pqueue.is_empty q) do
      match Pqueue.pop_min q with
      | None -> finished := true
      | Some (u, du) ->
          (* Staleness guard: skip entries superseded by a shorter
             settled distance (cannot happen with the indexed
             decrease-key queue and non-negative weights, but keeps
             the search correct under any queue or weight regime). *)
          if du > dist.(u) then ()
          else if u = dst then finished := true
          else
            List.iter
              (fun (v, li) ->
                let l = snap.Snapshot.links.(li) in
                if
                  (not (banned_nodes v))
                  && not (banned_links (min u v, max u v))
                then begin
                  let alt = du +. link_cost weight l in
                  if alt < dist.(v) then begin
                    dist.(v) <- alt;
                    prev.(v) <- u;
                    Pqueue.insert_or_decrease q v alt
                  end
                end)
              (Snapshot.neighbors snap u)
    done;
    if dist.(dst) = Float.infinity then None
    else begin
      let rec build acc u = if u = src then src :: acc else build (u :: acc) prev.(u) in
      Some (Path.of_list (build [] dst))
    end
  end

let distances ?(weight = Hops) snap ~src =
  let n = Snapshot.num_nodes snap in
  let dist = Array.make n Float.infinity in
  let q = Pqueue.create n in
  dist.(src) <- 0.0;
  Pqueue.insert q src 0.0;
  let continue = ref true in
  while !continue do
    match Pqueue.pop_min q with
    | None -> continue := false
    | Some (u, du) ->
        if du <= dist.(u) then
          List.iter
            (fun (v, li) ->
              let l = snap.Snapshot.links.(li) in
              let alt = du +. link_cost weight l in
              if alt < dist.(v) then begin
                dist.(v) <- alt;
                Pqueue.insert_or_decrease q v alt
              end)
            (Snapshot.neighbors snap u)
  done;
  dist

let bfs_nearest snap ~src ~follow ~accept =
  let n = Snapshot.num_nodes snap in
  let visited = Array.make n false in
  let queue = Queue.create () in
  Queue.add (src, 0) queue;
  visited.(src) <- true;
  let result = ref None in
  while !result = None && not (Queue.is_empty queue) do
    let u, d = Queue.take queue in
    if accept u then result := Some (u, d)
    else
      List.iter
        (fun (v, li) ->
          if (not visited.(v)) && follow snap.Snapshot.links.(li) then begin
            visited.(v) <- true;
            Queue.add (v, d + 1) queue
          end)
        (Snapshot.neighbors snap u)
  done;
  !result
