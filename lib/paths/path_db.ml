module Constellation = Sate_orbit.Constellation
module Snapshot = Sate_topology.Snapshot
module Par = Sate_par.Par

type t = {
  constellation : Constellation.t;
  k : int;
  table : (int * int, Path.t list) Hashtbl.t;
}

let k t = t.k

let pairs t =
  let arr = Array.make (Hashtbl.length t.table) (0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun pair _ ->
      arr.(!i) <- pair;
      incr i)
    t.table;
  Array.sort compare arr;
  arr

let paths t ~src ~dst =
  Option.value ~default:[] (Hashtbl.find_opt t.table (src, dst))

(* One independent Yen/grid search per pair, fanned out over the
   domain pool.  Results come back in the fixed order of [pairs], so
   the table contents are identical to the sequential build. *)
let searches constellation snap ~k pair_list =
  let arr = Array.of_list pair_list in
  Par.map_array
    (fun (src, dst) -> Grid_paths.k_shortest constellation snap ~src ~dst ~k)
    arr

let dedup pair_list =
  let seen = Hashtbl.create (List.length pair_list) in
  List.filter
    (fun pair ->
      if Hashtbl.mem seen pair then false
      else begin
        Hashtbl.replace seen pair ();
        true
      end)
    pair_list

let compute constellation snap ~pairs ~k =
  let uniq = dedup pairs in
  let results = searches constellation snap ~k uniq in
  let table = Hashtbl.create (List.length uniq) in
  List.iteri (fun i pair -> Hashtbl.replace table pair results.(i)) uniq;
  { constellation; k; table }

let update t snap =
  (* Revalidation and recomputation are independent per pair; iterate
     the sorted pair array so the fan-out order is deterministic. *)
  let entries = pairs t in
  let results =
    Par.map_array
      (fun ((src, dst) as pair) ->
        let paths = Hashtbl.find t.table pair in
        let still_valid = List.filter (Path.valid_in snap) paths in
        if List.length still_valid = List.length paths && paths <> [] then
          (paths, false)
        else
          (Grid_paths.k_shortest t.constellation snap ~src ~dst ~k:t.k, true))
      entries
  in
  let table = Hashtbl.create (Array.length entries) in
  let recomputed = ref 0 in
  Array.iteri
    (fun i pair ->
      let paths, was_recomputed = results.(i) in
      if was_recomputed then incr recomputed;
      Hashtbl.replace table pair paths)
    entries;
  ({ t with table }, !recomputed)

let add_pairs t snap new_pairs =
  let table = Hashtbl.copy t.table in
  let fresh = dedup (List.filter (fun p -> not (Hashtbl.mem table p)) new_pairs) in
  let results = searches t.constellation snap ~k:t.k fresh in
  List.iteri (fun i pair -> Hashtbl.replace table pair results.(i)) fresh;
  { t with table }

let stats t =
  let total = Hashtbl.fold (fun _ ps acc -> acc + List.length ps) t.table 0 in
  (Hashtbl.length t.table, total)
