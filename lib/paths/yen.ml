module Snapshot = Sate_topology.Snapshot

let path_cost weight snap p =
  match weight with
  | Dijkstra.Hops -> float_of_int (Path.hops p)
  | Dijkstra.Km -> Path.length_km snap p

let k_shortest ?(weight = Dijkstra.Hops) snap ~src ~dst ~k =
  if k <= 0 then []
  else
    match Dijkstra.shortest ~weight snap ~src ~dst with
    | None -> []
    | Some first ->
        (* Newest-first accumulator with an explicit count: the accept
           loop runs on the per-commodity precompute hot path, and
           [!accepted @ [best]] / [List.length] per iteration would
           make it O(k^2).  Reversed once on return. *)
        let accepted = ref [ first ] in
        let accepted_n = ref 1 in
        (* Candidate pool keyed by cost; paths deduplicated. *)
        let candidates = Sate_util.Heap.create () in
        let known = Hashtbl.create 64 in
        Hashtbl.replace known first.Path.nodes ();
        let push_candidate p =
          if not (Hashtbl.mem known p.Path.nodes) then begin
            Hashtbl.replace known p.Path.nodes ();
            Sate_util.Heap.push candidates (path_cost weight snap p) p
          end
        in
        let spurs_of prev_path =
          let nodes = prev_path.Path.nodes in
          let len = Array.length nodes in
          for i = 0 to len - 2 do
            let spur_node = nodes.(i) in
            let root = Array.sub nodes 0 (i + 1) in
            (* Ban links used by accepted paths sharing this root and
               ban root nodes except the spur node (looplessness). *)
            let banned_links = Hashtbl.create 16 in
            List.iter
              (fun (p : Path.t) ->
                let pn = p.Path.nodes in
                if Array.length pn > i && Array.sub pn 0 (i + 1) = root then begin
                  let u = pn.(i) and v = pn.(i + 1) in
                  Hashtbl.replace banned_links (min u v, max u v) ()
                end)
              !accepted;
            let banned_nodes = Hashtbl.create 16 in
            Array.iteri (fun j n -> if j < i then Hashtbl.replace banned_nodes n ()) nodes;
            match
              Dijkstra.shortest ~weight
                ~banned_nodes:(Hashtbl.mem banned_nodes)
                ~banned_links:(Hashtbl.mem banned_links)
                snap ~src:spur_node ~dst
            with
            | None -> ()
            | Some spur ->
                let total =
                  Array.append (Array.sub root 0 i) spur.Path.nodes
                in
                let p = { Path.nodes = total } in
                if Path.is_loopless p then push_candidate p
          done
        in
        let rec loop last =
          if !accepted_n >= k then ()
          else begin
            spurs_of last;
            match Sate_util.Heap.pop candidates with
            | None -> ()
            | Some (_, best) ->
                accepted := best :: !accepted;
                incr accepted_n;
                loop best
          end
        in
        loop first;
        List.rev !accepted
