(** The SaTE model (Section 3.3, Fig. 7): three sequential GNN
    modules over the simplified TE graph plus an MLP decoder.

    - Module R1 refines satellite embeddings over inter-satellite
      links;
    - Module R2 updates satellite and path embeddings concurrently
      over the crosses relation;
    - Module R3 refines path and traffic embeddings over the
      transports relation;
    - the decoder maps each path embedding (concatenated with its
      demand embedding) to an allocation ratio in (0, 1); the
      predicted rate is ratio x demand.

    Embeddings are initialised exactly as in the Fig. 7 table: each
    scalar TE input times a learnable 1 x d matrix W.  Residual
    connections mitigate over-smoothing (Appendix B).  The paper uses
    d = 768 on an A100; the CPU default here is d = 32, which keeps
    the architecture identical while fitting laptop budgets. *)

type hyper = {
  dim : int;  (** Embedding width (paper: 768; default here 32). *)
  heads : int;  (** Attention heads per GAT block. *)
  r1_layers : int;
  r2_layers : int;
  r3_layers : int;
  decoder_hidden : int;
  attention : bool;  (** false = mean-aggregation ablation. *)
  with_access_relation : bool;
      (** true = keep the redundant access relation (Fig. 6a ablation),
          adding a fourth module and its latency cost. *)
}

val default_hyper : hyper

type t

val create : ?hyper:hyper -> seed:int -> unit -> t

val hyper : t -> hyper

val params : t -> Sate_nn.Autodiff.t list

val num_parameters : t -> int

val forward : ?parallel:bool -> t -> Te_graph.t -> Sate_nn.Autodiff.t
(** Allocation ratios, [num_paths x 1], each in (0, 1).
    [~parallel:true] (default false) runs the attention heads and the
    independent per-layer block updates of R2/R3 on the
    {!Sate_par.Par} domain pool; forward values are bit-identical to
    the sequential pass, but graph construction order is not, so
    training (which runs {!Sate_nn.Autodiff.backward}) sticks with the
    default. *)

val predict : ?trim:bool -> t -> Sate_te.Instance.t -> Sate_te.Allocation.t
(** End-to-end inference: build the graph, run {!forward}, scale by
    demands, and (by default) apply the §3.3 feasibility trim. *)

val save : t -> string -> unit
(** Persist hyperparameters and weights to a file. *)

val load : string -> t
(** Restore a model saved by {!save}. *)
