open Sate_tensor
module A = Sate_nn.Autodiff
module Par = Sate_par.Par

type head = {
  w_src : A.t; (* dim x head_dim: Theta_n applied to neighbours *)
  w_dst : A.t; (* dim x head_dim: Theta_n applied to the centre node *)
  w_edge : A.t; (* 1 x head_dim: Theta_e on scalar edge features *)
  a_src : A.t; (* head_dim x 1 attention vector slices of Eq. 7 *)
  a_dst : A.t;
  a_edge : A.t;
}

type t = { dim : int; heads : head array; w_self : A.t; attention : bool }

let create ?(attention = true) rng ~dim ~heads =
  if dim mod heads <> 0 then invalid_arg "Gat.create: dim must divide by heads";
  let hd = dim / heads in
  let mk () =
    { w_src = A.leaf (Tensor.xavier rng dim hd);
      w_dst = A.leaf (Tensor.xavier rng dim hd);
      w_edge = A.leaf (Tensor.xavier rng 1 hd);
      a_src = A.leaf (Tensor.xavier rng hd 1);
      a_dst = A.leaf (Tensor.xavier rng hd 1);
      a_edge = A.leaf (Tensor.xavier rng hd 1) }
  in
  { dim;
    heads = Array.init heads (fun _ -> mk ());
    w_self = A.leaf (Tensor.xavier rng dim dim);
    attention }

let forward ?(parallel = false) t ~x_src ~x_dst ~edges =
  let { Te_graph.src; dst; feat } = edges in
  let n_dst = (fst (A.shape x_dst)) in
  let feat_node = A.const feat in
  let self = A.matmul x_dst t.w_self in
  if Array.length src = 0 then A.leaky_relu self
  else begin
    let per_head h =
      (* Project, then gather endpoint rows per edge. *)
      let hs = A.matmul x_src h.w_src in
      let hd = A.matmul x_dst h.w_dst in
      let he = A.matmul feat_node h.w_edge in
      let hs_e = A.gather_rows hs src in
      let hd_e = A.gather_rows hd dst in
      (* Eq. 7 scores: a^T [Theta v_i || Theta v_j || Theta e]. *)
      let scores =
        A.leaky_relu
          (A.add
             (A.add (A.matmul hd_e h.a_dst) (A.matmul hs_e h.a_src))
             (A.matmul he h.a_edge))
      in
      let alpha =
        if t.attention then A.segment_softmax scores dst
        else
          (* Mean aggregation: uniform weights within each segment. *)
          A.const
            (Tensor.segment_softmax (Tensor.create (Array.length dst) 1) dst)
      in
      (* Eq. 6 messages: alpha * (Theta_n v_j + Theta_e e). *)
      let msg = A.col_mul (A.add hs_e he) alpha in
      A.scatter_add_rows msg dst ~rows:n_dst
    in
    (* Heads build independent subgraphs, so they fan out across the
       domain pool; concatenation keeps the fixed head order, so the
       forward values are bit-identical to the sequential pass. *)
    let heads_out =
      if parallel then Par.map_array per_head t.heads
      else Array.map per_head t.heads
    in
    let aggregated = A.concat_cols (Array.to_list heads_out) in
    A.leaky_relu (A.add self aggregated)
  end

let params t =
  t.w_self
  :: List.concat_map
       (fun h -> [ h.w_src; h.w_dst; h.w_edge; h.a_src; h.a_dst; h.a_edge ])
       (Array.to_list t.heads)
