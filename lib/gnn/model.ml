open Sate_tensor
module A = Sate_nn.Autodiff
module Layers = Sate_nn.Layers
module Rng = Sate_util.Rng
module Instance = Sate_te.Instance
module Par = Sate_par.Par

type hyper = {
  dim : int;
  heads : int;
  r1_layers : int;
  r2_layers : int;
  r3_layers : int;
  decoder_hidden : int;
  attention : bool;
  with_access_relation : bool;
}

let default_hyper =
  { dim = 32;
    heads = 2;
    r1_layers = 2;
    r2_layers = 2;
    r3_layers = 2;
    decoder_hidden = 64;
    attention = true;
    with_access_relation = false }

type t = {
  hyper : hyper;
  seed : int;
  w_ne1 : A.t; (* satellite embedding init: 1 x d *)
  w_ne2 : A.t; (* path embedding init *)
  w_ne3 : A.t; (* traffic embedding init *)
  r1 : Gat.t array;
  r2_path_to_sat : Gat.t array;
  r2_sat_to_path : Gat.t array;
  r3_path_to_traffic : Gat.t array;
  r3_traffic_to_path : Gat.t array;
  access_traffic_to_sat : Gat.t array;
  decoder : Layers.mlp;
}

let create ?(hyper = default_hyper) ~seed () =
  let rng = Rng.create seed in
  let gats n = Array.init n (fun _ -> Gat.create ~attention:hyper.attention rng ~dim:hyper.dim ~heads:hyper.heads) in
  { hyper;
    seed;
    w_ne1 = A.leaf (Tensor.xavier rng 1 hyper.dim);
    w_ne2 = A.leaf (Tensor.xavier rng 1 hyper.dim);
    w_ne3 = A.leaf (Tensor.xavier rng 1 hyper.dim);
    r1 = gats hyper.r1_layers;
    r2_path_to_sat = gats hyper.r2_layers;
    r2_sat_to_path = gats hyper.r2_layers;
    r3_path_to_traffic = gats hyper.r3_layers;
    r3_traffic_to_path = gats hyper.r3_layers;
    access_traffic_to_sat =
      (if hyper.with_access_relation then gats 1 else [||]);
    decoder =
      Layers.mlp rng ~dims:[ 2 * hyper.dim; hyper.decoder_hidden; 1 ] }

let hyper t = t.hyper

let params t =
  [ t.w_ne1; t.w_ne2; t.w_ne3 ]
  @ List.concat_map Gat.params (Array.to_list t.r1)
  @ List.concat_map Gat.params (Array.to_list t.r2_path_to_sat)
  @ List.concat_map Gat.params (Array.to_list t.r2_sat_to_path)
  @ List.concat_map Gat.params (Array.to_list t.r3_path_to_traffic)
  @ List.concat_map Gat.params (Array.to_list t.r3_traffic_to_path)
  @ List.concat_map Gat.params (Array.to_list t.access_traffic_to_sat)
  @ Layers.mlp_params t.decoder

let num_parameters t = Layers.num_parameters (params t)

let forward ?(parallel = false) t (g : Te_graph.t) =
  if g.Te_graph.num_paths = 0 then A.const (Tensor.create 0 1)
  else begin
    (* [pair f g] evaluates the two independent per-layer block
       updates, on two pool workers when [parallel] is set.  Results
       land in fixed slots, so forward values never depend on
       scheduling. *)
    let pair f g = if parallel then Par.both f g else (f (), g ()) in
    (* Embedding initialisation (Fig. 7 table). *)
    let x_sat = ref (A.matmul (A.const g.Te_graph.sat_feat) t.w_ne1) in
    let x_path = ref (A.matmul (A.const g.Te_graph.path_feat) t.w_ne2) in
    let x_traffic = ref (A.matmul (A.const g.Te_graph.traffic_feat) t.w_ne3) in
    (* GNN for R1: satellite embeddings over ISLs. *)
    Array.iter
      (fun gat ->
        x_sat :=
          A.add !x_sat
            (Gat.forward ~parallel gat ~x_src:!x_sat ~x_dst:!x_sat
               ~edges:g.Te_graph.r1))
      t.r1;
    (* Ablation: redundant access relation (traffic -> satellite). *)
    (match g.Te_graph.access with
    | Some access_edges ->
        Array.iter
          (fun gat ->
            x_sat :=
              A.add !x_sat
                (Gat.forward ~parallel gat ~x_src:!x_traffic ~x_dst:!x_sat
                   ~edges:access_edges))
          t.access_traffic_to_sat
    | None -> ());
    (* GNN for R2: satellites and paths updated concurrently. *)
    for i = 0 to t.hyper.r2_layers - 1 do
      let sat_in = !x_sat and path_in = !x_path in
      let new_sat, new_path =
        pair
          (fun () ->
            Gat.forward ~parallel t.r2_path_to_sat.(i) ~x_src:path_in
              ~x_dst:sat_in ~edges:g.Te_graph.r2)
          (fun () ->
            Gat.forward ~parallel t.r2_sat_to_path.(i) ~x_src:sat_in
              ~x_dst:path_in ~edges:(Te_graph.reverse g.Te_graph.r2))
      in
      x_sat := A.add sat_in new_sat;
      x_path := A.add path_in new_path
    done;
    (* GNN for R3: paths and traffic demands. *)
    for i = 0 to t.hyper.r3_layers - 1 do
      let path_in = !x_path and traffic_in = !x_traffic in
      let new_traffic, new_path =
        pair
          (fun () ->
            Gat.forward ~parallel t.r3_path_to_traffic.(i) ~x_src:path_in
              ~x_dst:traffic_in ~edges:g.Te_graph.r3)
          (fun () ->
            Gat.forward ~parallel t.r3_traffic_to_path.(i) ~x_src:traffic_in
              ~x_dst:path_in ~edges:(Te_graph.reverse g.Te_graph.r3))
      in
      x_traffic := A.add traffic_in new_traffic;
      x_path := A.add path_in new_path
    done;
    (* Decoder: path embedding || its demand embedding -> ratio. *)
    let demand_emb = A.gather_rows !x_traffic g.Te_graph.path_commodity in
    let z = Layers.forward_mlp t.decoder (A.concat_cols [ !x_path; demand_emb ]) in
    A.sigmoid z
  end

let predict ?(trim = true) t inst =
  let g = Te_graph.of_instance ~with_access_relation:t.hyper.with_access_relation inst in
  (* Inference never runs backward, so the scheduling-dependent node
     ids of parallel graph construction are harmless here. *)
  let ratios = forward ~parallel:true t g in
  let alloc = Sate_te.Allocation.zeros inst in
  let p = ref 0 in
  Array.iteri
    (fun f rates ->
      let demand = inst.Instance.commodities.(f).Instance.demand_mbps in
      Array.iteri
        (fun pi _ ->
          rates.(pi) <- demand *. Tensor.get ratios.A.value !p 0;
          incr p)
        rates)
    alloc;
  if trim then Sate_te.Allocation.trim inst alloc else alloc

(* Save format: marshalled (hyper, seed, weights).  Marshal is safe
   here: files are local artefacts of this library only. *)
let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Marshal.to_channel oc (t.hyper, t.seed, Layers.dump_params (params t)) [])

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let hyper, seed, weights =
        (Marshal.from_channel ic : hyper * int * float array)
      in
      let t = create ~hyper ~seed () in
      Layers.load_params (params t) weights;
      t)
