(** Edge-featured graph attention block (Eqs. 1, 6, 7).

    One block updates destination-node embeddings from source-node
    embeddings along a directed relation:

    {v v_i' = LeakyReLU( Theta_s v_i  ||_k  sum_j a^k_{j,i} (Theta_n^k v_j + Theta_e^k e_{j,i}) ) v}

    with attention coefficients per head from Eq. 7.  Source and
    destination node sets may differ (bipartite relations R2/R3), so
    separate source/destination key projections are kept. *)

type t

val create :
  ?attention:bool -> Sate_util.Rng.t -> dim:int -> heads:int -> t
(** Embedding dimension [dim] must be divisible by [heads].  With
    [attention:false] the block degrades to mean aggregation (uniform
    attention weights) — the ablation of Sec. 3.3's design choice. *)

val forward :
  ?parallel:bool ->
  t ->
  x_src:Sate_nn.Autodiff.t ->
  x_dst:Sate_nn.Autodiff.t ->
  edges:Te_graph.edges ->
  Sate_nn.Autodiff.t
(** New destination embeddings ([N_dst x dim]).  Edge [src]/[dst]
    indices address [x_src]/[x_dst] rows respectively.  Destinations
    without incoming edges keep only their self term.

    [~parallel:true] (default false) fans the attention heads out
    across the {!Sate_par.Par} domain pool.  Forward {e values} are
    bit-identical either way; graph-node creation order (and hence
    gradient accumulation order under {!Sate_nn.Autodiff.backward})
    becomes scheduling-dependent, so training paths keep the default
    sequential construction. *)

val params : t -> Sate_nn.Autodiff.t list
