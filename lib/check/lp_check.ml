module Simplex = Sate_lp.Simplex
module Certificate = Sate_lp.Certificate
module Lp_solver = Sate_te.Lp_solver

let check_outcome ?eps ~c ~constraints outcome =
  Certificate.check ?eps ~c ~constraints outcome

let certified ?eps ?maximize ~c ~constraints () =
  let outcome = Simplex.solve ?maximize ~c ~constraints () in
  match Certificate.check ?eps ~c ~constraints outcome with
  | None -> Ok outcome
  | Some report ->
      if Certificate.valid report then Ok outcome
      else Error (Certificate.report_to_string report)

let verify_instance ?objective inst =
  match Lp_solver.solve_with_value ?objective ~verify:true inst with
  | _, value -> Ok value
  | exception Lp_solver.Verification_failed msg -> Error msg
