(** Allocation feasibility auditing.

    A thin façade over {!Sate_te.Allocation.violations} that turns the
    structured report into something a harness or test can act on:
    formatted summaries and a fail-fast assertion. *)

val check :
  ?eps:float ->
  Sate_te.Instance.t ->
  Sate_te.Allocation.t ->
  Sate_te.Allocation.violation list
(** Alias of {!Sate_te.Allocation.violations}. *)

val summary : Sate_te.Allocation.violation list -> string
(** ["feasible"] or a semicolon-joined list of violation messages. *)

val assert_feasible :
  ?eps:float -> Sate_te.Instance.t -> Sate_te.Allocation.t -> unit
(** Raises [Failure] with the formatted violation list if the
    allocation breaks any invariant. *)
