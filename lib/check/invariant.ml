module Allocation = Sate_te.Allocation

let check ?eps inst alloc = Allocation.violations ?eps inst alloc

let summary = function
  | [] -> "feasible"
  | vs -> String.concat "; " (List.map Allocation.violation_to_string vs)

let assert_feasible ?eps inst alloc =
  match check ?eps inst alloc with
  | [] -> ()
  | vs -> failwith ("infeasible allocation: " ^ summary vs)
