(** Dense row-major 2D float tensors.

    The minimal kernel set needed by the GNN framework: elementwise
    arithmetic, matrix multiplication, row gather/scatter (message
    passing), segment sum, and segment softmax (attention
    normalisation).  This is the repository's stand-in for the GPU
    tensor engine.  The heavy kernels ({!matmul}, {!segment_sum},
    {!scatter_add_rows}, {!segment_softmax}) partition their work
    across the {!Sate_par.Par} domain pool above a size threshold;
    partitioning is by disjoint output rows/segments evaluated in the
    sequential order, so results are bit-identical to single-threaded
    execution for any pool size. *)

type t = { rows : int; cols : int; data : float array }

val create : int -> int -> t
(** Zero-filled [rows x cols] tensor. *)

val full : int -> int -> float -> t

val init : int -> int -> (int -> int -> float) -> t

val of_array : rows:int -> cols:int -> float array -> t
(** Copy a row-major array into a fresh tensor; length must match.
    The source array is not aliased, so mutating it afterwards cannot
    corrupt the tensor (consistent with {!of_column}). *)

val of_column : float array -> t
(** [n x 1] tensor copying the given values. *)

val copy : t -> t

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val same_shape : t -> t -> bool

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** Raises [Invalid_argument] on shape mismatch. *)

val add : t -> t -> t

val sub : t -> t -> t

val mul : t -> t -> t
(** Elementwise (Hadamard) product. *)

val scale : float -> t -> t

val matmul : t -> t -> t
(** [a.cols] must equal [b.rows]. *)

val transpose : t -> t

val add_rowvec : t -> t -> t
(** [add_rowvec m v] adds the [1 x cols] vector [v] to every row. *)

val col_mul : t -> t -> t
(** [col_mul m v] scales row [i] of [m] by [v.(i, 0)] ([rows x 1]). *)

val gather_rows : t -> int array -> t
(** [gather_rows m idx] stacks rows [m.(idx.(0)); m.(idx.(1)); ...]. *)

val scatter_add_rows : t -> int array -> rows:int -> t
(** [scatter_add_rows m idx ~rows] accumulates row [i] of [m] into row
    [idx.(i)] of a zero [rows x m.cols] tensor.  Raises
    [Invalid_argument] on a length mismatch or an index outside
    [\[0, rows)]. *)

val segment_sum : t -> int array -> segments:int -> t
(** [segment_sum m seg ~segments] sums the rows of [m] into a zero
    [segments x m.cols] tensor: row [i] accumulates into row
    [seg.(i)], in increasing [i] order within each segment.  Raises
    [Invalid_argument] on a length mismatch or a segment id outside
    [\[0, segments)]. *)

val concat_cols : t list -> t
(** Horizontal concatenation; all tensors share the row count. *)

val split_cols : t -> int list -> t list
(** Inverse of {!concat_cols} given the column widths. *)

val row_sums : t -> t
(** [rows x 1] sums of each row. *)

val sum : t -> float

val mean : t -> float

val frobenius : t -> float
(** Square root of the sum of squares. *)

val segment_softmax : t -> int array -> t
(** [segment_softmax scores seg] where [scores] is [m x 1]: softmax
    normalisation within groups of equal [seg.(i)] (numerically
    stabilised).  Used for attention over each node's incoming
    edges.  Raises [Invalid_argument] on a negative segment id or a
    length mismatch. *)

val xavier : Sate_util.Rng.t -> int -> int -> t
(** Glorot-uniform initialisation for a [fan_in x fan_out] weight. *)

val pp : Format.formatter -> t -> unit
