module Rng = Sate_util.Rng
module Par = Sate_par.Par

type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let full rows cols v = { rows; cols; data = Array.make (rows * cols) v }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun i -> f (i / cols) (i mod cols)) }

let of_array ~rows ~cols data =
  if Array.length data <> rows * cols then
    invalid_arg "Tensor.of_array: length mismatch";
  { rows; cols; data = Array.copy data }

let of_column v = { rows = Array.length v; cols = 1; data = Array.copy v }

let copy t = { t with data = Array.copy t.data }

let get t i j = t.data.((i * t.cols) + j)

let set t i j v = t.data.((i * t.cols) + j) <- v

let same_shape a b = a.rows = b.rows && a.cols = b.cols

let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if not (same_shape a b) then invalid_arg "Tensor.map2: shape mismatch";
  { a with data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

let add a b = map2 ( +. ) a b

let sub a b = map2 ( -. ) a b

let mul a b = map2 ( *. ) a b

let scale k t = map (fun v -> k *. v) t

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Tensor.matmul: inner dimension mismatch";
  let out = create a.rows b.cols in
  (* ikj loop order for cache-friendly access on row-major data.
     Output rows are independent, so the row range splits across the
     domain pool; every band runs the exact sequential loop on its own
     rows and the result is bit-identical for any pool size. *)
  let row_band lo hi =
    for i = lo to hi - 1 do
      for kk = 0 to a.cols - 1 do
        let aik = a.data.((i * a.cols) + kk) in
        if aik <> 0.0 then begin
          let arow = i * b.cols and brow = kk * b.cols in
          for j = 0 to b.cols - 1 do
            out.data.(arow + j) <- out.data.(arow + j) +. (aik *. b.data.(brow + j))
          done
        end
      done
    done
  in
  if a.rows * a.cols * b.cols < 65536 then row_band 0 a.rows
  else Par.range_iter a.rows row_band;
  out

let transpose t = init t.cols t.rows (fun i j -> get t j i)

let add_rowvec m v =
  if v.rows <> 1 || v.cols <> m.cols then
    invalid_arg "Tensor.add_rowvec: vector must be 1 x cols";
  init m.rows m.cols (fun i j -> get m i j +. get v 0 j)

let col_mul m v =
  if v.cols <> 1 || v.rows <> m.rows then
    invalid_arg "Tensor.col_mul: vector must be rows x 1";
  init m.rows m.cols (fun i j -> get m i j *. get v i 0)

let gather_rows m idx =
  let out = create (Array.length idx) m.cols in
  Array.iteri
    (fun i r ->
      if r < 0 || r >= m.rows then invalid_arg "Tensor.gather_rows: index out of range";
      Array.blit m.data (r * m.cols) out.data (i * m.cols) m.cols)
    idx;
  out

(* Shared core of segment_sum / scatter_add_rows.  Parallelism
   partitions the *output* segments: each band scans every row but
   accumulates only rows of its own segments, in row order, so the
   per-segment addition order — and hence every bit of the result —
   matches the sequential loop for any pool size. *)
let segment_sum_into out m seg =
  let band slo shi =
    for i = 0 to m.rows - 1 do
      let s = seg.(i) in
      if s >= slo && s < shi then begin
        let orow = s * m.cols and mrow = i * m.cols in
        for j = 0 to m.cols - 1 do
          out.data.(orow + j) <- out.data.(orow + j) +. m.data.(mrow + j)
        done
      end
    done
  in
  if m.rows * m.cols < 16384 then band 0 out.rows
  else Par.range_iter ~chunks:(Par.domains ()) out.rows band

let segment_sum m seg ~segments =
  if Array.length seg <> m.rows then
    invalid_arg "Tensor.segment_sum: segment length mismatch";
  Array.iter
    (fun s ->
      if s < 0 || s >= segments then
        invalid_arg "Tensor.segment_sum: segment id out of range")
    seg;
  let out = create segments m.cols in
  segment_sum_into out m seg;
  out

let scatter_add_rows m idx ~rows =
  if Array.length idx <> m.rows then
    invalid_arg "Tensor.scatter_add_rows: index length mismatch";
  Array.iter
    (fun r ->
      if r < 0 || r >= rows then
        invalid_arg "Tensor.scatter_add_rows: index out of range")
    idx;
  let out = create rows m.cols in
  segment_sum_into out m idx;
  out

let concat_cols ts =
  match ts with
  | [] -> invalid_arg "Tensor.concat_cols: empty"
  | first :: _ ->
      let rows = first.rows in
      List.iter
        (fun t -> if t.rows <> rows then invalid_arg "Tensor.concat_cols: row mismatch")
        ts;
      let cols = List.fold_left (fun acc t -> acc + t.cols) 0 ts in
      let out = create rows cols in
      let off = ref 0 in
      List.iter
        (fun t ->
          for i = 0 to rows - 1 do
            Array.blit t.data (i * t.cols) out.data ((i * cols) + !off) t.cols
          done;
          off := !off + t.cols)
        ts;
      out

let split_cols t widths =
  let total = List.fold_left ( + ) 0 widths in
  if total <> t.cols then invalid_arg "Tensor.split_cols: widths mismatch";
  let off = ref 0 in
  List.map
    (fun w ->
      let out = create t.rows w in
      for i = 0 to t.rows - 1 do
        Array.blit t.data ((i * t.cols) + !off) out.data (i * w) w
      done;
      off := !off + w;
      out)
    widths

let row_sums t =
  let out = create t.rows 1 in
  for i = 0 to t.rows - 1 do
    let s = ref 0.0 in
    for j = 0 to t.cols - 1 do
      s := !s +. t.data.((i * t.cols) + j)
    done;
    out.data.(i) <- !s
  done;
  out

let sum t = Array.fold_left ( +. ) 0.0 t.data

let mean t =
  if Array.length t.data = 0 then 0.0
  else sum t /. float_of_int (Array.length t.data)

let frobenius t = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 t.data)

let segment_softmax scores seg =
  if scores.cols <> 1 then invalid_arg "Tensor.segment_softmax: need m x 1";
  if Array.length seg <> scores.rows then
    invalid_arg "Tensor.segment_softmax: segment length mismatch";
  let m = scores.rows in
  let out = create m 1 in
  if m > 0 then begin
    Array.iter
      (fun s ->
        if s < 0 then invalid_arg "Tensor.segment_softmax: negative segment id")
      seg;
    let nseg = 1 + Array.fold_left max 0 seg in
    (* Segment-partitioned bands (see segment_sum_into): each band
       owns a contiguous range of segment ids and performs the
       max / exp-sum / divide passes for exactly its own rows, in row
       order, so results are bit-identical to the sequential pass. *)
    let band slo shi =
      let w = shi - slo in
      let seg_max = Array.make w Float.neg_infinity in
      for i = 0 to m - 1 do
        let s = seg.(i) in
        if s >= slo && s < shi && scores.data.(i) > seg_max.(s - slo) then
          seg_max.(s - slo) <- scores.data.(i)
      done;
      let seg_sum = Array.make w 0.0 in
      for i = 0 to m - 1 do
        let s = seg.(i) in
        if s >= slo && s < shi then begin
          let e = exp (scores.data.(i) -. seg_max.(s - slo)) in
          out.data.(i) <- e;
          seg_sum.(s - slo) <- seg_sum.(s - slo) +. e
        end
      done;
      for i = 0 to m - 1 do
        let s = seg.(i) in
        if s >= slo && s < shi then out.data.(i) <- out.data.(i) /. seg_sum.(s - slo)
      done
    in
    if m < 2048 then band 0 nseg
    else Par.range_iter ~chunks:(Par.domains ()) nseg band
  end;
  out

let xavier rng fan_in fan_out =
  let bound = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  init fan_in fan_out (fun _ _ -> Rng.uniform rng (-.bound) bound)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  for i = 0 to min (t.rows - 1) 7 do
    Format.fprintf fmt "[";
    for j = 0 to min (t.cols - 1) 7 do
      Format.fprintf fmt "%8.4f " (get t i j)
    done;
    Format.fprintf fmt "]@,"
  done;
  Format.fprintf fmt "(%dx%d)@]" t.rows t.cols
