open Sate_tensor

type t = {
  id : int;
  value : Tensor.t;
  mutable grad : Tensor.t;
  mutable back : unit -> unit;
  parents : t list;
}

(* Atomic so graphs may be built from several domains at once (the
   GNN's per-head fan-out): ids stay unique, and each node's id still
   exceeds its parents' since parents are created first.  Descending
   ids therefore remain a valid reverse topological order. *)
let counter = Atomic.make 1

let node value parents =
  { id = Atomic.fetch_and_add counter 1;
    value;
    grad = Tensor.create value.Tensor.rows value.Tensor.cols;
    back = (fun () -> ());
    parents }

let leaf value = node value []

let const = leaf

let shape t = (t.value.Tensor.rows, t.value.Tensor.cols)

let accumulate dst g = dst.grad <- Tensor.add dst.grad g

let add a b =
  let out = node (Tensor.add a.value b.value) [ a; b ] in
  out.back <-
    (fun () ->
      accumulate a out.grad;
      accumulate b out.grad);
  out

let sub a b =
  let out = node (Tensor.sub a.value b.value) [ a; b ] in
  out.back <-
    (fun () ->
      accumulate a out.grad;
      accumulate b (Tensor.scale (-1.0) out.grad));
  out

let mul a b =
  let out = node (Tensor.mul a.value b.value) [ a; b ] in
  out.back <-
    (fun () ->
      accumulate a (Tensor.mul out.grad b.value);
      accumulate b (Tensor.mul out.grad a.value));
  out

let scale k a =
  let out = node (Tensor.scale k a.value) [ a ] in
  out.back <- (fun () -> accumulate a (Tensor.scale k out.grad));
  out

let matmul a b =
  let out = node (Tensor.matmul a.value b.value) [ a; b ] in
  out.back <-
    (fun () ->
      accumulate a (Tensor.matmul out.grad (Tensor.transpose b.value));
      accumulate b (Tensor.matmul (Tensor.transpose a.value) out.grad));
  out

let square a =
  let out = node (Tensor.map (fun v -> v *. v) a.value) [ a ] in
  out.back <-
    (fun () -> accumulate a (Tensor.mul out.grad (Tensor.scale 2.0 a.value)));
  out

let leaky_relu ?(alpha = 0.2) a =
  let out =
    node (Tensor.map (fun v -> if v > 0.0 then v else alpha *. v) a.value) [ a ]
  in
  out.back <-
    (fun () ->
      accumulate a
        (Tensor.map2
           (fun g v -> if v > 0.0 then g else alpha *. g)
           out.grad a.value));
  out

let relu a =
  let out = node (Tensor.map (fun v -> Float.max 0.0 v) a.value) [ a ] in
  out.back <-
    (fun () ->
      accumulate a
        (Tensor.map2 (fun g v -> if v > 0.0 then g else 0.0) out.grad a.value));
  out

let sigmoid a =
  let s = Tensor.map (fun v -> 1.0 /. (1.0 +. Stdlib.exp (-.v))) a.value in
  let out = node s [ a ] in
  out.back <-
    (fun () ->
      accumulate a (Tensor.map2 (fun g y -> g *. y *. (1.0 -. y)) out.grad s));
  out

let exp a =
  let e = Tensor.map Stdlib.exp a.value in
  let out = node e [ a ] in
  out.back <- (fun () -> accumulate a (Tensor.mul out.grad e));
  out

let clamp_max bound a =
  let out = node (Tensor.map (fun v -> Float.min bound v) a.value) [ a ] in
  out.back <-
    (fun () ->
      accumulate a
        (Tensor.map2
           (fun g v -> if v < bound then g else 0.0)
           out.grad a.value));
  out

let gather_rows a idx =
  let out = node (Tensor.gather_rows a.value idx) [ a ] in
  out.back <-
    (fun () ->
      accumulate a
        (Tensor.scatter_add_rows out.grad idx ~rows:a.value.Tensor.rows));
  out

let scatter_add_rows a idx ~rows =
  let out = node (Tensor.scatter_add_rows a.value idx ~rows) [ a ] in
  out.back <- (fun () -> accumulate a (Tensor.gather_rows out.grad idx));
  out

let concat_cols parts =
  let out = node (Tensor.concat_cols (List.map (fun p -> p.value) parts)) parts in
  out.back <-
    (fun () ->
      let widths = List.map (fun p -> p.value.Tensor.cols) parts in
      let grads = Tensor.split_cols out.grad widths in
      List.iter2 accumulate parts grads);
  out

(* Column sums as a 1 x cols tensor (adjoint of row broadcast). *)
let col_sums (m : Tensor.t) =
  let out = Tensor.create 1 m.Tensor.cols in
  for i = 0 to m.Tensor.rows - 1 do
    for j = 0 to m.Tensor.cols - 1 do
      out.Tensor.data.(j) <- out.Tensor.data.(j) +. Tensor.get m i j
    done
  done;
  out

let add_rowvec m v =
  let out = node (Tensor.add_rowvec m.value v.value) [ m; v ] in
  out.back <-
    (fun () ->
      accumulate m out.grad;
      accumulate v (col_sums out.grad));
  out

let col_mul m v =
  let out = node (Tensor.col_mul m.value v.value) [ m; v ] in
  out.back <-
    (fun () ->
      accumulate m (Tensor.col_mul out.grad v.value);
      accumulate v (Tensor.row_sums (Tensor.mul out.grad m.value)));
  out

let row_sums a =
  let out = node (Tensor.row_sums a.value) [ a ] in
  out.back <-
    (fun () ->
      let rows, cols = (a.value.Tensor.rows, a.value.Tensor.cols) in
      accumulate a
        (Tensor.init rows cols (fun i _ -> Tensor.get out.grad i 0)));
  out

let sum a =
  let out = node (Tensor.of_array ~rows:1 ~cols:1 [| Tensor.sum a.value |]) [ a ] in
  out.back <-
    (fun () ->
      let g = out.grad.Tensor.data.(0) in
      accumulate a (Tensor.full a.value.Tensor.rows a.value.Tensor.cols g));
  out

let mean a =
  let n = float_of_int (a.value.Tensor.rows * a.value.Tensor.cols) in
  scale (1.0 /. Float.max 1.0 n) (sum a)

let segment_softmax scores seg =
  Array.iter
    (fun s ->
      if s < 0 then invalid_arg "Autodiff.segment_softmax: negative segment id")
    seg;
  let y = Tensor.segment_softmax scores.value seg in
  let out = node y [ scores ] in
  out.back <-
    (fun () ->
      let m = y.Tensor.rows in
      if m > 0 then begin
        let segments = 1 + Array.fold_left max 0 seg in
        let dot = Tensor.segment_sum (Tensor.mul y out.grad) seg ~segments in
        let g =
          Tensor.init m 1 (fun i _ ->
              y.Tensor.data.(i)
              *. (out.grad.Tensor.data.(i) -. dot.Tensor.data.(seg.(i))))
        in
        accumulate scores g
      end);
  out

let scalar v = leaf (Tensor.of_array ~rows:1 ~cols:1 [| v |])

let scalar_value t =
  if t.value.Tensor.rows <> 1 || t.value.Tensor.cols <> 1 then
    invalid_arg "Autodiff.scalar_value: not a scalar";
  t.value.Tensor.data.(0)

let div_scalar a s =
  let sv = scalar_value s in
  let out = node (Tensor.scale (1.0 /. sv) a.value) [ a; s ] in
  out.back <-
    (fun () ->
      accumulate a (Tensor.scale (1.0 /. sv) out.grad);
      let da =
        Tensor.sum (Tensor.mul out.grad a.value) *. (-1.0 /. (sv *. sv))
      in
      accumulate s (Tensor.of_array ~rows:1 ~cols:1 [| da |]));
  out

let backward root =
  if root.value.Tensor.rows <> 1 || root.value.Tensor.cols <> 1 then
    invalid_arg "Autodiff.backward: root must be scalar";
  root.grad <- Tensor.full 1 1 1.0;
  (* Collect the reachable subgraph; node ids increase topologically
     (children are created after parents), so descending-id order is a
     valid reverse topological order. *)
  let visited = Hashtbl.create 256 in
  let nodes = ref [] in
  let rec visit n =
    if not (Hashtbl.mem visited n.id) then begin
      Hashtbl.add visited n.id ();
      nodes := n :: !nodes;
      List.iter visit n.parents
    end
  in
  visit root;
  let ordered = List.sort (fun a b -> compare b.id a.id) !nodes in
  List.iter (fun n -> n.back ()) ordered
