module Snapshot = Sate_topology.Snapshot
module Link = Sate_topology.Link
module Simplex = Sate_lp.Simplex

module Certificate = Sate_lp.Certificate

type objective = Max_throughput | Min_mlu | Max_log_utility

exception Verification_failed of string

(* Raise if an [Optimal] outcome fails the independent certificate
   check (primal feasibility + objective recomputation). *)
let certify ~what ~c ~constraints outcome =
  match Certificate.check ~c ~constraints outcome with
  | None -> ()
  | Some report ->
      if not (Certificate.valid report) then
        raise
          (Verification_failed
             (Printf.sprintf "%s: %s" what (Certificate.report_to_string report)))

let fail_check what fmt =
  Printf.ksprintf (fun s -> raise (Verification_failed (what ^ ": " ^ s))) fmt

(* Variable layout: candidate paths flattened commodity-major;
   [offsets.(f)] is the first variable of commodity [f]. *)
let layout (inst : Instance.t) =
  let nc = Array.length inst.Instance.commodities in
  let offsets = Array.make nc 0 in
  let n = ref 0 in
  for f = 0 to nc - 1 do
    offsets.(f) <- !n;
    n := !n + Array.length inst.Instance.commodities.(f).Instance.paths
  done;
  (offsets, !n)

let link_rows (inst : Instance.t) ~n_vars ~mlu_var offsets =
  let used = Instance.used_links inst in
  let rows = Hashtbl.create (Array.length used) in
  Array.iter (fun li -> Hashtbl.replace rows li (Array.make n_vars 0.0)) used;
  Array.iteri
    (fun f (c : Instance.commodity) ->
      Array.iteri
        (fun p links ->
          let v = offsets.(f) + p in
          Array.iter
            (fun li ->
              let row = Hashtbl.find rows li in
              row.(v) <- row.(v) +. 1.0)
            links)
        c.Instance.path_links)
    inst.Instance.commodities;
  Array.to_list used
  |> List.map (fun li ->
         let row = Hashtbl.find rows li in
         let cap = inst.Instance.snapshot.Snapshot.links.(li).Link.capacity_mbps in
         match mlu_var with
         | None -> { Simplex.coeffs = row; sense = Simplex.Le; rhs = cap }
         | Some tv ->
             (* load - cap * t <= 0 *)
             row.(tv) <- -.cap;
             { Simplex.coeffs = row; sense = Simplex.Le; rhs = 0.0 })

let node_rows (inst : Instance.t) ~n_vars offsets =
  let n = Snapshot.num_nodes inst.Instance.snapshot in
  let up_rows = Array.make n None and down_rows = Array.make n None in
  let touch rows node =
    match rows.(node) with
    | Some r -> r
    | None ->
        let r = Array.make n_vars 0.0 in
        rows.(node) <- Some r;
        r
  in
  Array.iteri
    (fun f (c : Instance.commodity) ->
      if Array.length c.Instance.paths > 0 then begin
        let finite_up = Float.is_finite inst.Instance.up_caps.(c.Instance.src) in
        let finite_down = Float.is_finite inst.Instance.down_caps.(c.Instance.dst) in
        for p = 0 to Array.length c.Instance.paths - 1 do
          let v = offsets.(f) + p in
          if finite_up then (touch up_rows c.Instance.src).(v) <- 1.0;
          if finite_down then (touch down_rows c.Instance.dst).(v) <- 1.0
        done
      end)
    inst.Instance.commodities;
  let collect rows caps =
    Array.to_list
      (Array.mapi
         (fun node row ->
           Option.map
             (fun coeffs ->
               { Simplex.coeffs; sense = Simplex.Le; rhs = caps.(node) })
             row)
         rows)
    |> List.filter_map Fun.id
  in
  collect up_rows inst.Instance.up_caps @ collect down_rows inst.Instance.down_caps

let demand_rows (inst : Instance.t) ~n_vars ~sense offsets =
  Array.to_list
    (Array.mapi
       (fun f (c : Instance.commodity) ->
         if Array.length c.Instance.paths = 0 then None
         else begin
           let coeffs = Array.make n_vars 0.0 in
           for p = 0 to Array.length c.Instance.paths - 1 do
             coeffs.(offsets.(f) + p) <- 1.0
           done;
           Some { Simplex.coeffs; sense; rhs = c.Instance.demand_mbps }
         end)
       inst.Instance.commodities)
  |> List.filter_map Fun.id

let to_allocation (inst : Instance.t) offsets solution =
  Array.mapi
    (fun f (c : Instance.commodity) ->
      Array.init (Array.length c.Instance.paths) (fun p -> solution.(offsets.(f) + p)))
    inst.Instance.commodities

(* Tangent fractions of the demand at which log utility is
   linearised; the concave hull of these cuts approximates u = log x
   from above. *)
let log_utility_tangents = [ 0.05; 0.2; 0.5; 1.0 ]

(* Shift added to every commodity's utility variable so it stays
   non-negative in the simplex (log of small rates is negative). *)
let log_utility_shift = 25.0

let solve_with_value ?(objective = Max_throughput) ?(verify = false) inst =
  let offsets, n_paths = layout inst in
  if n_paths = 0 then (Allocation.zeros inst, 0.0)
  else
    match objective with
    | Max_throughput -> (
        let n_vars = n_paths in
        let c = Array.make n_vars 1.0 in
        let constraints =
          link_rows inst ~n_vars ~mlu_var:None offsets
          @ node_rows inst ~n_vars offsets
          @ demand_rows inst ~n_vars ~sense:Simplex.Le offsets
        in
        match Simplex.solve ~c ~constraints () with
        | Simplex.Optimal { objective = obj; solution } as outcome ->
            let alloc = Allocation.trim inst (to_allocation inst offsets solution) in
            let flow = Allocation.total_flow alloc in
            if verify then begin
              certify ~what:"max-throughput" ~c ~constraints outcome;
              (* The LP solution is primal-feasible, so the trim
                 projection must preserve its flow: a gap means either
                 the certificate or the projection is wrong. *)
              if Float.abs (flow -. obj) > 1e-5 *. Float.max 1.0 obj then
                fail_check "max-throughput"
                  "trim projection changed flow: lp %.9g, trimmed %.9g" obj flow;
              match Allocation.violations inst alloc with
              | [] -> ()
              | v :: _ ->
                  fail_check "max-throughput" "trimmed allocation infeasible: %s"
                    (Allocation.violation_to_string v)
            end;
            (alloc, flow)
        | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit ->
            (* The throughput LP is always feasible (x = 0); treat any
               numerical failure as an empty allocation. *)
            if verify then
              fail_check "max-throughput"
                "solver failed on a problem that is feasible by construction";
            (Allocation.zeros inst, 0.0))
    | Min_mlu -> (
        let n_vars = n_paths + 1 in
        let tv = n_paths in
        let c = Array.make n_vars 0.0 in
        c.(tv) <- 1.0;
        let constraints =
          link_rows inst ~n_vars ~mlu_var:(Some tv) offsets
          @ demand_rows inst ~n_vars ~sense:Simplex.Eq offsets
        in
        match Simplex.solve ~maximize:false ~c ~constraints () with
        | Simplex.Optimal { objective = t; solution } as outcome ->
            let alloc = to_allocation inst offsets solution in
            if verify then begin
              certify ~what:"min-mlu" ~c ~constraints outcome;
              (* Every capacity row reads load <= cap * t, so the
                 achieved utilisation can never exceed the optimum. *)
              let achieved = Allocation.mlu inst alloc in
              if achieved > t +. 1e-5 *. Float.max 1.0 t then
                fail_check "min-mlu" "achieved MLU %.9g exceeds optimum %.9g"
                  achieved t
            end;
            (alloc, t)
        | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit ->
            (Allocation.zeros inst, Float.infinity))
    | Max_log_utility -> (
        (* Variables: path rates, then one shifted utility u_f' per
           routable commodity.  maximize sum u_f' subject to the
           throughput constraints plus, for each tangent fraction a,
           u_f' - (sum_p x_fp) / (a d_f) <= log (a d_f) - 1 + shift. *)
        let commodities = inst.Instance.commodities in
        let routable =
          Array.to_list
            (Array.mapi (fun f c -> (f, c)) commodities)
          |> List.filter (fun (_, (c : Instance.commodity)) ->
                 Array.length c.Instance.paths > 0 && c.Instance.demand_mbps > 0.0)
        in
        let n_util = List.length routable in
        let n_vars = n_paths + n_util in
        let util_index = Hashtbl.create n_util in
        List.iteri (fun i (f, _) -> Hashtbl.replace util_index f (n_paths + i)) routable;
        let c = Array.make n_vars 0.0 in
        List.iter (fun (f, _) -> c.(Hashtbl.find util_index f) <- 1.0) routable;
        let widen row =
          let r = Array.make n_vars 0.0 in
          Array.blit row 0 r 0 (Array.length row);
          r
        in
        let base_rows =
          List.map
            (fun { Simplex.coeffs; sense; rhs } ->
              { Simplex.coeffs = widen coeffs; sense; rhs })
            (link_rows inst ~n_vars:n_paths ~mlu_var:None offsets
            @ node_rows inst ~n_vars:n_paths offsets
            @ demand_rows inst ~n_vars:n_paths ~sense:Simplex.Le offsets)
        in
        let tangent_rows =
          List.concat_map
            (fun (f, (cm : Instance.commodity)) ->
              let uf = Hashtbl.find util_index f in
              List.map
                (fun a ->
                  let anchor = a *. cm.Instance.demand_mbps in
                  let row = Array.make n_vars 0.0 in
                  row.(uf) <- 1.0;
                  for p = 0 to Array.length cm.Instance.paths - 1 do
                    row.(offsets.(f) + p) <- -1.0 /. anchor
                  done;
                  { Simplex.coeffs = row;
                    sense = Simplex.Le;
                    rhs = log anchor -. 1.0 +. log_utility_shift })
                log_utility_tangents)
            routable
        in
        let constraints = base_rows @ tangent_rows in
        match Simplex.solve ~c ~constraints () with
        | Simplex.Optimal { solution; _ } as outcome ->
            let alloc =
              Allocation.trim inst
                (to_allocation inst offsets (Array.sub solution 0 n_paths))
            in
            if verify then begin
              certify ~what:"max-log-utility" ~c ~constraints outcome;
              match Allocation.violations inst alloc with
              | [] -> ()
              | v :: _ ->
                  fail_check "max-log-utility"
                    "trimmed allocation infeasible: %s"
                    (Allocation.violation_to_string v)
            end;
            (* Report the true achieved utility, not the piecewise
               surrogate. *)
            let utility =
              Array.fold_left
                (fun acc rates ->
                  let x = Array.fold_left ( +. ) 0.0 rates in
                  if x > 0.0 then acc +. log x else acc)
                0.0 alloc
            in
            (alloc, utility)
        | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit ->
            (Allocation.zeros inst, Float.neg_infinity))

let solve ?objective ?verify inst = fst (solve_with_value ?objective ?verify inst)
