(** Exact TE optimisation via the simplex LP solver — the
    repository's stand-in for Gurobi [24].

    Solves the path-based formulation of Appendix A exactly: it is the
    ground-truth label generator for SaTE's supervised training, the
    offline optimum ("theoretical upper bound") of Appendix H.1, and
    the slowest-but-best baseline of Figs. 8 and 10. *)

type objective =
  | Max_throughput  (** Objective (2.a). *)
  | Min_mlu
      (** Min-max link utilisation (Eq. 3): all demand is routed and
          the maximum utilisation is minimised; per-node capacity
          constraints are dropped as in the paper's MLU variant. *)
  | Max_log_utility
      (** Network-utility maximisation with u_f = log (Eq. 3): the
          concave utility gives a soft fairness guarantee (Appendix A
          discussion).  Solved by outer piecewise-linear tangent
          approximation of the log. *)

exception Verification_failed of string
(** Raised in [~verify:true] mode when an [Optimal] result fails the
    independent certificate check (see {!Sate_lp.Certificate}) or an
    objective-specific cross-check. *)

val solve :
  ?objective:objective -> ?verify:bool -> Instance.t -> Allocation.t
(** Optimal feasible allocation.  Commodities without candidate paths
    get zero.  For [Min_mlu], commodities are scaled down uniformly
    first if routing all demand is infeasible.

    With [~verify:true] (default false), every [Optimal] simplex
    result is re-checked against the original constraint system
    ({!Sate_lp.Certificate}): primal feasibility, objective
    recomputation, and a cross-check tying the LP objective to the
    {!Allocation.trim}-projected allocation (flow preservation for
    throughput, achieved MLU bound for MLU).  Raises
    {!Verification_failed} on any discrepancy. *)

val solve_with_value :
  ?objective:objective -> ?verify:bool -> Instance.t -> Allocation.t * float
(** Also return the objective value: total throughput in Mbps, the
    achieved MLU, or the achieved sum of log-rates. *)
