(** Multicore domain-pool runtime.

    A fixed-size pool of OCaml 5 domains, spawned once and fed through
    an atomic chunk counter, behind deterministic data-parallel
    combinators.  Design rules:

    - {b Deterministic chunking} — work splits into chunks whose
      boundaries are a pure function of the iteration size and chunk
      count; chunk results land in fixed, index-ordered slots.  Kernels
      whose chunks write disjoint outputs (all the kernels wired in
      this repository) therefore produce {e bit-identical} results for
      any pool size, including the sequential fallback.
    - {b Sequential fallback} — a pool of size 1 (or
      [SATE_DOMAINS=1]) runs every combinator inline with no domain
      traffic; nested submissions from inside a worker also degrade to
      inline execution instead of deadlocking the pool.
    - {b Exception safety} — the first exception raised by any chunk
      is re-raised on the submitting domain after all chunks have run;
      the pool remains usable afterwards.

    The ambient pool is created lazily on first use.  Its size is
    [SATE_DOMAINS] when set, otherwise
    [min 8 (Domain.recommended_domain_count ())]. *)

type t
(** A pool of worker domains. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of [domains] workers total
    (that is, [domains - 1] extra domains; the submitting domain
    always participates).  Default and minimum is 1, which spawns
    nothing. *)

val size : t -> int
(** Worker count, including the submitting domain. *)

val shutdown : t -> unit
(** Stop and join the pool's domains.  The ambient pool is shut down
    automatically at exit. *)

val get : unit -> t
(** The ambient pool (created on first call). *)

val domains : unit -> int
(** [size (get ())]. *)

val with_domains : int -> (unit -> 'a) -> 'a
(** [with_domains n f] runs [f] with the ambient pool replaced by a
    fresh pool of [n] workers, restoring (and shutting the temporary
    pool down) afterwards, even on exceptions.  [with_domains 1] is
    the cheap way to force sequential execution of a region. *)

val in_pool : unit -> bool
(** True while executing inside a pool chunk (worker or submitter);
    combinators called in that state run sequentially inline. *)

val range_iter : ?pool:t -> ?chunks:int -> int -> (int -> int -> unit) -> unit
(** [range_iter n f] covers [0, n) with disjoint contiguous ranges,
    calling [f lo hi] for each (the range is [lo, hi)).  [?chunks]
    overrides the default chunk count of [4 * size] (it is clamped to
    [n]); kernels that pay a fixed scan cost per chunk pass
    [~chunks:(domains ())]. *)

val parallel_for : ?pool:t -> int -> (int -> unit) -> unit
(** [parallel_for n f] runs [f i] for each [i] in [0, n), chunked as
    in {!range_iter}. *)

val map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** Like [Array.map], with elements mapped in parallel into fixed
    slots.  [f] is applied to element 0 on the submitting domain
    first (to seed the result array), then to the rest in chunks. *)

val map_reduce :
  ?pool:t ->
  map:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  int ->
  'a
(** [map_reduce ~map ~combine ~init n] folds [combine] over
    [map 0 .. map (n-1)].  Each chunk folds its indices in order;
    partials then fold in chunk-index order, so the result is
    reproducible for a fixed pool size, and bit-identical to the
    sequential fold whenever [combine] is associative (always for
    exact types like [int]; floating-point reductions may differ from
    sequential in the last bits when the pool has size > 1). *)

val both : ?pool:t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Run two independent computations, in parallel when the pool has
    spare workers.  Exceptions propagate as in the other combinators. *)
