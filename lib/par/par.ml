(* Fixed-size domain pool for coarse-grained data parallelism.

   Worker domains are spawned once per pool and parked on a condition
   variable; each submitted task is a fixed number of chunks that
   workers (and the submitting domain itself) claim via an atomic
   counter.  Chunk boundaries are a pure function of (n, chunks), and
   every chunk writes disjoint output slots, so kernels built on this
   pool produce bit-identical results for any pool size.

   Nested submissions (a parallel kernel called from inside a worker,
   e.g. a matmul inside a per-method fan-out) run sequentially inline:
   a domain-local flag marks pool context and short-circuits to the
   sequential fallback, which is also taken when the pool has size 1
   (`SATE_DOMAINS=1`). *)

type task = {
  chunks : int;
  next : int Atomic.t; (* next chunk index to claim *)
  finished : int Atomic.t; (* chunks fully executed *)
  run : int -> unit;
  task_mu : Mutex.t;
  task_cv : Condition.t; (* signalled when the last chunk lands *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
}

type t = {
  size : int; (* worker count, including the submitting domain *)
  mutable domains : unit Domain.t array; (* the size - 1 spawned domains *)
  job_mu : Mutex.t;
  job_cv : Condition.t;
  mutable job : task option;
  mutable generation : int; (* bumped per submission *)
  mutable stop : bool;
}

(* Domain-local marker: true inside pool workers and while the
   submitting domain executes its own share of chunks. *)
let in_pool_key = Domain.DLS.new_key (fun () -> false)

let in_pool () = Domain.DLS.get in_pool_key

let exec_chunks task =
  let rec go () =
    let c = Atomic.fetch_and_add task.next 1 in
    if c < task.chunks then begin
      (try task.run c
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock task.task_mu;
         if task.failed = None then task.failed <- Some (e, bt);
         Mutex.unlock task.task_mu);
      let done_now = 1 + Atomic.fetch_and_add task.finished 1 in
      if done_now = task.chunks then begin
        Mutex.lock task.task_mu;
        Condition.broadcast task.task_cv;
        Mutex.unlock task.task_mu
      end;
      go ()
    end
  in
  go ()

let worker pool =
  Domain.DLS.set in_pool_key true;
  let seen = ref pool.generation in
  let rec loop () =
    Mutex.lock pool.job_mu;
    while (not pool.stop) && pool.generation = !seen do
      Condition.wait pool.job_cv pool.job_mu
    done;
    if pool.stop then Mutex.unlock pool.job_mu
    else begin
      seen := pool.generation;
      let job = pool.job in
      Mutex.unlock pool.job_mu;
      (match job with Some task -> exec_chunks task | None -> ());
      loop ()
    end
  in
  loop ()

let create ?(domains = 1) () =
  let size = max 1 domains in
  let pool =
    { size;
      domains = [||];
      job_mu = Mutex.create ();
      job_cv = Condition.create ();
      job = None;
      generation = 0;
      stop = false }
  in
  pool.domains <-
    Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.job_mu;
  pool.stop <- true;
  Condition.broadcast pool.job_cv;
  Mutex.unlock pool.job_mu;
  Array.iter Domain.join pool.domains

(* Submit a task and help execute it; re-raises the first worker
   exception after every chunk has run, leaving the pool reusable. *)
let run_task pool task =
  Mutex.lock pool.job_mu;
  pool.job <- Some task;
  pool.generation <- pool.generation + 1;
  Condition.broadcast pool.job_cv;
  Mutex.unlock pool.job_mu;
  Domain.DLS.set in_pool_key true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set in_pool_key false)
    (fun () -> exec_chunks task);
  Mutex.lock task.task_mu;
  while Atomic.get task.finished < task.chunks do
    Condition.wait task.task_cv task.task_mu
  done;
  Mutex.unlock task.task_mu;
  Mutex.lock pool.job_mu;
  pool.job <- None;
  Mutex.unlock pool.job_mu;
  match task.failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Ambient pool.                                                       *)

let env_domains () =
  match Sys.getenv_opt "SATE_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_size () =
  match env_domains () with
  | Some n -> n
  | None -> min 8 (max 1 (Domain.recommended_domain_count ()))

let global : t option ref = ref None

let at_exit_registered = ref false

let get () =
  match !global with
  | Some pool -> pool
  | None ->
      let pool = create ~domains:(default_size ()) () in
      global := Some pool;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        Stdlib.at_exit (fun () ->
            match !global with
            | Some p ->
                global := None;
                shutdown p
            | None -> ())
      end;
      pool

let domains () = (get ()).size

let with_domains n f =
  let previous = !global in
  let temp = create ~domains:(max 1 n) () in
  global := Some temp;
  Fun.protect
    ~finally:(fun () ->
      global := previous;
      shutdown temp)
    f

(* ------------------------------------------------------------------ *)
(* Deterministic chunked iteration.                                    *)

let chunk_bounds n chunks c =
  let q = n / chunks and r = n mod chunks in
  let lo = (c * q) + min c r in
  let hi = lo + q + if c < r then 1 else 0 in
  (lo, hi)

let resolve = function Some pool -> pool | None -> get ()

let range_iter ?pool ?chunks n f =
  if n > 0 then begin
    let pool = resolve pool in
    if pool.size <= 1 || in_pool () then f 0 n
    else begin
      let chunks =
        match chunks with
        | Some c -> max 1 (min c n)
        | None -> min n (4 * pool.size)
      in
      if chunks <= 1 then f 0 n
      else
        run_task pool
          { chunks;
            next = Atomic.make 0;
            finished = Atomic.make 0;
            run = (fun c -> let lo, hi = chunk_bounds n chunks c in f lo hi);
            task_mu = Mutex.create ();
            task_cv = Condition.create ();
            failed = None }
    end
  end

let parallel_for ?pool n f =
  range_iter ?pool n (fun lo hi ->
      for i = lo to hi - 1 do
        f i
      done)

let map_array ?pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* Element 0 seeds the result array on the calling domain; the
       remaining slots are filled by disjoint chunk writers. *)
    let out = Array.make n (f a.(0)) in
    parallel_for ?pool (n - 1) (fun i -> out.(i + 1) <- f a.(i + 1));
    out
  end

let map_reduce ?pool ~map ~combine ~init n =
  if n <= 0 then init
  else begin
    let pool = resolve pool in
    let sequential () =
      let acc = ref init in
      for i = 0 to n - 1 do
        acc := combine !acc (map i)
      done;
      !acc
    in
    if pool.size <= 1 || in_pool () then sequential ()
    else begin
      let chunks = min n (4 * pool.size) in
      if chunks <= 1 then sequential ()
      else begin
        let partials = Array.make chunks None in
        run_task pool
          { chunks;
            next = Atomic.make 0;
            finished = Atomic.make 0;
            run =
              (fun c ->
                let lo, hi = chunk_bounds n chunks c in
                let acc = ref (map lo) in
                for i = lo + 1 to hi - 1 do
                  acc := combine !acc (map i)
                done;
                partials.(c) <- Some !acc);
            task_mu = Mutex.create ();
            task_cv = Condition.create ();
            failed = None };
        (* Partials fold in fixed chunk-index order: the result depends
           only on the chunk count, never on worker scheduling. *)
        Array.fold_left
          (fun acc p -> match p with Some v -> combine acc v | None -> acc)
          init partials
      end
    end
  end

let both ?pool f g =
  let pool = resolve pool in
  if pool.size <= 1 || in_pool () then
    let a = f () in
    let b = g () in
    (a, b)
  else begin
    let ra = ref None and rb = ref None in
    run_task pool
      { chunks = 2;
        next = Atomic.make 0;
        finished = Atomic.make 0;
        run = (fun c -> if c = 0 then ra := Some (f ()) else rb := Some (g ()));
        task_mu = Mutex.create ();
        task_cv = Condition.create ();
        failed = None };
    match (!ra, !rb) with
    | Some a, Some b -> (a, b)
    | _ -> assert false (* run_task re-raises before reaching here *)
  end
