(** Descriptive statistics over float samples.

    Used throughout the evaluation harness to summarize latency
    distributions, satisfied-demand series, and CDF/CV figures. *)

val mean : float array -> float
(** Arithmetic mean.  [nan] on an empty array. *)

val variance : float array -> float
(** Population variance.  [nan] on an empty array. *)

val std : float array -> float
(** Population standard deviation. *)

val coefficient_of_variation : float array -> float
(** [std /. mean]; [nan] when the mean is zero or the array empty. *)

val min_max : float array -> float * float
(** Smallest and largest sample.  Raises [Invalid_argument] if empty. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in \[0,100\], linear interpolation
    between order statistics.  Does not mutate [xs].  Raises
    [Invalid_argument] on an empty array, on [p] outside the range
    (including NaN), or on any NaN sample — a NaN has no rank, so
    order statistics over it are meaningless. *)

val median : float array -> float
(** 50th percentile. *)

val cdf_points : float array -> int -> (float * float) list
(** [cdf_points xs n] returns [n] evenly spaced [(value, fraction)]
    points of the empirical CDF, suitable for plotting or printing.
    Raises [Invalid_argument] on any NaN sample (same policy as
    {!percentile}). *)

val histogram : float array -> bins:int -> (float * int) array
(** [histogram xs ~bins] buckets samples into [bins] equal-width bins;
    each entry is [(bin_lower_edge, count)]. *)

val sum : float array -> float
(** Kahan-compensated sum. *)
