(* Binary min-heap on parallel arrays: priorities live in an unboxed
   float array (cheap comparisons during sifts) and values in an
   option array so vacated slots can be reset to [None].  Clearing
   matters: [pop] used to leave the popped entry aliased in
   [data.(size)], which kept arbitrarily large values — whole [Path.t]
   node arrays during Yen's algorithm — reachable from the GC's point
   of view long after the caller dropped them; [clear] retained every
   element the same way. *)

type 'a t = {
  mutable prios : float array;
  mutable values : 'a option array;
  mutable size : int;
}

let create () = { prios = [||]; values = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h =
  let cap = Array.length h.prios in
  if h.size >= cap then begin
    let ncap = max 16 (cap * 2) in
    let nprios = Array.make ncap 0.0 in
    let nvalues = Array.make ncap None in
    Array.blit h.prios 0 nprios 0 h.size;
    Array.blit h.values 0 nvalues 0 h.size;
    h.prios <- nprios;
    h.values <- nvalues
  end

let swap h i j =
  let p = h.prios.(i) in
  h.prios.(i) <- h.prios.(j);
  h.prios.(j) <- p;
  let v = h.values.(i) in
  h.values.(i) <- h.values.(j);
  h.values.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prios.(i) < h.prios.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.prios.(l) < h.prios.(!smallest) then smallest := l;
  if r < h.size && h.prios.(r) < h.prios.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h prio value =
  grow h;
  h.prios.(h.size) <- prio;
  h.values.(h.size) <- Some value;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let value_exn = function Some v -> v | None -> assert false

let peek h = if h.size = 0 then None else Some (h.prios.(0), value_exn h.values.(0))

let pop h =
  if h.size = 0 then None
  else begin
    let prio = h.prios.(0) and value = value_exn h.values.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.prios.(0) <- h.prios.(h.size);
      h.values.(0) <- h.values.(h.size)
    end;
    (* Clear the vacated slot so the GC can reclaim the value. *)
    h.values.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    Some (prio, value)
  end

let pop_exn h =
  match pop h with
  | Some r -> r
  | None -> invalid_arg "Heap.pop_exn: empty"

let clear h =
  (* Same audit as [pop]: dropping [size] alone would retain every
     stored value until the slot is overwritten by a future push. *)
  Array.fill h.values 0 h.size None;
  h.size <- 0
