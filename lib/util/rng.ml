type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: xor-shift + multiply avalanche. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: n must be positive";
  (* Keep 62 bits so the value fits a non-negative OCaml int.
     Rejection sampling removes the modulo bias of [v mod n] when n
     does not divide 2^62: draws landing in the final partial bucket
     are redrawn (probability < n / 2^62). *)
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let r = v mod n in
    if v - r > max_int - (n - 1) then draw () else r
  in
  draw ()

let float01 t =
  (* 53 high bits scaled to [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v *. (1.0 /. 9007199254740992.0)

let float t x = float01 t *. x

let uniform t lo hi = lo +. (float01 t *. (hi -. lo))

let bool t = Int64.logand (bits64 t) 1L = 1L

let normal t ~mean ~std =
  let u1 = max 1e-12 (float01 t) in
  let u2 = float01 t in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (std *. r *. cos (2.0 *. Float.pi *. u2))

let exponential t ~rate =
  let u = max 1e-12 (float01 t) in
  -.log u /. rate

let poisson t ~lambda =
  if lambda <= 0.0 then 0
  else if lambda < 30.0 then begin
    (* Knuth: multiply uniforms until below exp(-lambda). *)
    let limit = exp (-.lambda) in
    let rec loop k p =
      let p = p *. float01 t in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0
  end
  else
    let x = normal t ~mean:lambda ~std:(sqrt lambda) in
    max 0 (int_of_float (Float.round x))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let sample_weighted t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  assert (total > 0.0);
  let target = float t total in
  let n = Array.length w in
  let rec loop i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. w.(i) in
      if target < acc then i else loop (i + 1) acc
  in
  loop 0 0.0
