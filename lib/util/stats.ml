let sum xs =
  (* Kahan summation: latency samples span several orders of magnitude. *)
  let total = ref 0.0 and c = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !total +. y in
      c := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  let n = Array.length xs in
  if n = 0 then Float.nan else sum xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n

let std xs = sqrt (variance xs)

let coefficient_of_variation xs =
  let m = mean xs in
  if Float.is_nan m || m = 0.0 then Float.nan else std xs /. m

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

(* NaN policy for order statistics: a NaN sample has no rank, so any
   sorted position we could give it would silently corrupt the
   percentile — reject loudly instead.  (Polymorphic [compare] both
   boxes every float on this hot path and leaves NaN placement
   unspecified; [Float.compare] after this check is total.) *)
let reject_nan name xs =
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg (name ^ ": NaN sample"))
    xs

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p out of range";
  reject_nan "Stats.percentile" xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.0

let cdf_points xs n =
  if Array.length xs = 0 || n <= 0 then []
  else begin
    reject_nan "Stats.cdf_points" xs;
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let len = Array.length sorted in
    List.init n (fun i ->
        let frac = float_of_int (i + 1) /. float_of_int n in
        let idx = min (len - 1) (int_of_float (frac *. float_of_int len) - 1) in
        let idx = max 0 idx in
        (sorted.(idx), frac))
  end

let histogram xs ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  if Array.length xs = 0 then [||]
  else begin
    let lo, hi = min_max xs in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    Array.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. width) in
        let b = min (bins - 1) (max 0 b) in
        counts.(b) <- counts.(b) + 1)
      xs;
    Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
  end
