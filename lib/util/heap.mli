(** Binary min-heap keyed by float priority.

    Used by the discrete-event traffic simulator (flow expiries) and
    by shortest-path searches that do not need decrease-key. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int
(** Number of stored elements. *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h prio x] inserts [x] with priority [prio]. *)

val peek : 'a t -> (float * 'a) option
(** Smallest-priority element without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest-priority element.  The vacated
    internal slot is cleared, so the heap never retains a popped value
    from the GC. *)

val pop_exn : 'a t -> float * 'a
(** Like {!pop} but raises [Invalid_argument] when empty. *)

val clear : 'a t -> unit
(** Remove all elements, releasing every stored value reference. *)
