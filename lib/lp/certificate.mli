(** Independent verification of {!Simplex} results.

    A simplex implementation can fail silently — a wrong pivot, a
    tolerance interacting badly with Big-M scaling — and still return
    [Optimal].  This module re-checks a returned solution against the
    {e original} (un-normalised) problem data with arithmetic that
    shares no code with the solver: every constraint is re-evaluated,
    variable signs are checked, and the objective is recomputed from
    scratch.  It is the certificate layer behind
    [Sate_te.Lp_solver.solve ~verify:true] and the reusable core of
    [Sate_check.Lp_check]. *)

type violation =
  | Constraint_violated of {
      index : int;  (** Position in the constraint list. *)
      lhs : float;  (** Recomputed [coeffs . x]. *)
      sense : Simplex.sense;
      rhs : float;
      excess : float;  (** How far outside the feasible side. *)
    }
  | Negative_variable of { index : int; value : float }
  | Objective_mismatch of { reported : float; recomputed : float }

type report = {
  violations : violation list;
  recomputed_objective : float;
  max_excess : float;  (** Worst constraint excess (0 when feasible). *)
}

val valid : report -> bool
(** No violations. *)

val violation_to_string : violation -> string

val report_to_string : report -> string
(** Human-readable summary ("certificate ok" or one line per
    violation). *)

val check :
  ?eps:float ->
  c:float array ->
  constraints:Simplex.constr list ->
  Simplex.outcome ->
  report option
(** [check ~c ~constraints outcome] verifies an [Optimal] outcome:
    primal feasibility of the solution against every original
    constraint, non-negativity of every variable, and agreement of the
    reported objective with [c . x].  Tolerances are relative to each
    constraint's own scale ([eps], default [1e-6]).  Returns [None]
    for non-[Optimal] outcomes — there is nothing to certify. *)
