(** Online satisfied-demand evaluation (Sec. 5.4).

    The TE workflow is periodic: a method starts computing on the
    inputs at some instant, and until the result lands the {e previous}
    allocation stays in effect — stale paths break as the topology
    moves, and new flows find no allocation.  Methods with second-scale
    latency therefore serve minutes-old decisions, which is exactly
    the effect SaTE's 17 ms latency removes.

    Every tick (1 s): the in-effect allocation is carried over onto
    the current instance — rates follow their original paths where
    those paths still exist and are valid, everything else is dropped
    — then trimmed against current capacities and demands, and the
    satisfied-demand ratio is recorded. *)

type report = {
  method_name : string;
  mean_satisfied : float;  (** Mean per-tick satisfied demand. *)
  per_tick : (float * float) list;  (** (time_s, satisfied ratio). *)
  mean_latency_ms : float;  (** Mean measured computation latency. *)
  recomputations : int;  (** Completed TE rounds during the run. *)
  debug_violations : int;
      (** Feasibility violations observed in [~debug:true] mode
          (always 0 otherwise).  A healthy method/harness pair reports
          zero: every computed and carried-over allocation satisfies
          {!Sate_te.Allocation.violations}. *)
}

val carryover :
  Sate_te.Instance.t ->
  Sate_te.Allocation.t ->
  Sate_te.Instance.t ->
  Sate_te.Allocation.t
(** Map an allocation computed for an old instance onto a new one:
    rates keep flowing on identical paths of matching commodities,
    then the result is trimmed to current feasibility. *)

val evaluate :
  ?tick_s:float ->
  ?latency_override_ms:float ->
  ?debug:bool ->
  duration_s:float ->
  Scenario.t ->
  Method.t ->
  report
(** Run the online loop for [duration_s] simulated seconds.  The
    method recomputes as soon as its previous round lands (at least
    every tick); latency is measured wall-clock unless
    [latency_override_ms] pins it (useful to replay the paper's
    Gurobi/POP/ECMP cadences of 47/25/54 s).

    [~debug:true] (default false) audits every allocation the harness
    touches — each method result and each carried-over per-tick
    allocation — against the feasibility invariants of its instance;
    violations are printed to stderr and counted in
    [debug_violations]. *)

val evaluate_all :
  ?tick_s:float ->
  ?cadence_ms:(Method.t -> float option) ->
  ?debug:bool ->
  duration_s:float ->
  scenario_of:(Method.t -> Scenario.t) ->
  Method.t list ->
  report list
(** Fan {!evaluate} out across the {!Sate_par.Par} domain pool, one
    task per method.  Because {!Scenario.t} is stateful, each task
    builds its own scenario via [scenario_of]; pass a closure that
    recreates the same seeded configuration for a like-for-like
    comparison.  [cadence_ms] maps each method to its
    [latency_override_ms] (e.g. the paper's Gurobi/POP/ECMP replay
    cadences); with overrides pinned, reports are deterministic and
    identical to sequential runs.  Reports preserve the order of the
    input list. *)
