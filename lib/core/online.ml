module Instance = Sate_te.Instance
module Allocation = Sate_te.Allocation
module Path = Sate_paths.Path
module Par = Sate_par.Par

type report = {
  method_name : string;
  mean_satisfied : float;
  per_tick : (float * float) list;
  mean_latency_ms : float;
  recomputations : int;
  debug_violations : int;
}

let carryover (old_inst : Instance.t) old_alloc (new_inst : Instance.t) =
  (* Index old rates by (src, dst, path nodes). *)
  let table = Hashtbl.create 256 in
  Array.iteri
    (fun f rates ->
      let c = old_inst.Instance.commodities.(f) in
      Array.iteri
        (fun p rate ->
          if rate > 0.0 then
            Hashtbl.replace table
              (c.Instance.src, c.Instance.dst, c.Instance.paths.(p).Path.nodes)
              rate)
        rates)
    old_alloc;
  let alloc = Allocation.zeros new_inst in
  Array.iteri
    (fun f rates ->
      let c = new_inst.Instance.commodities.(f) in
      Array.iteri
        (fun p _ ->
          match
            Hashtbl.find_opt table
              (c.Instance.src, c.Instance.dst, c.Instance.paths.(p).Path.nodes)
          with
          | Some rate -> rates.(p) <- rate
          | None -> ())
        rates)
    alloc;
  Allocation.trim new_inst alloc

let evaluate ?(tick_s = 1.0) ?latency_override_ms ?(debug = false) ~duration_s
    scenario m =
  let latencies = ref [] in
  let recomputations = ref 0 in
  let violation_count = ref 0 in
  (* Debug mode: every allocation the harness reports on must satisfy
     the feasibility invariants of its instance — carryover + trim are
     supposed to guarantee that.  Violations are counted (and logged)
     rather than fatal so a long run reports them all. *)
  let audit inst alloc =
    if debug then
      match Allocation.violations inst alloc with
      | [] -> ()
      | vs ->
          violation_count := !violation_count + List.length vs;
          List.iter
            (fun v ->
              Printf.eprintf "[online debug] %s: %s\n%!" (Method.name m)
                (Allocation.violation_to_string v))
            vs
  in
  let compute inst =
    let alloc, measured_ms = Method.solve_timed m inst in
    audit inst alloc;
    let ms =
      match latency_override_ms with Some ms -> ms | None -> measured_ms
    in
    latencies := ms :: !latencies;
    incr recomputations;
    (alloc, ms)
  in
  (* Warm start: the allocation computed on the t=0 inputs is in
     effect from the beginning; the next round starts immediately. *)
  let inst0 = Scenario.instance_at scenario ~time_s:0.0 in
  let alloc0, ms0 = compute inst0 in
  let active = ref (inst0, alloc0) in
  let pending = ref None in
  (* (finish_time, inst, alloc) *)
  pending := Some (ms0 /. 1000.0, inst0, alloc0);
  let per_tick = ref [] in
  let ticks = int_of_float (Float.ceil (duration_s /. tick_s)) in
  for i = 1 to ticks do
    let now = float_of_int i *. tick_s in
    let inst = Scenario.instance_at scenario ~time_s:now in
    (* Land a finished computation, then start the next round on
       current inputs. *)
    (match !pending with
    | Some (finish, p_inst, p_alloc) when now >= finish ->
        active := (p_inst, p_alloc);
        let alloc, ms = compute inst in
        pending := Some (now +. (ms /. 1000.0), inst, alloc)
    | Some _ | None -> ());
    let old_inst, old_alloc = !active in
    let effective = carryover old_inst old_alloc inst in
    audit inst effective;
    let satisfied = Allocation.satisfied_ratio inst effective in
    per_tick := (now, satisfied) :: !per_tick
  done;
  let per_tick = List.rev !per_tick in
  let n = List.length per_tick in
  { method_name = Method.name m;
    mean_satisfied =
      (if n = 0 then 0.0
       else List.fold_left (fun acc (_, s) -> acc +. s) 0.0 per_tick /. float_of_int n);
    per_tick;
    mean_latency_ms =
      (let l = !latencies in
       if l = [] then 0.0
       else List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l));
    recomputations = !recomputations;
    debug_violations = !violation_count }

let evaluate_all ?(tick_s = 1.0) ?(cadence_ms = fun _ -> None) ?(debug = false)
    ~duration_s ~scenario_of methods =
  (* Scenarios are stateful (path DB, traffic generator), so each
     method gets a fresh one from [scenario_of] inside its own task;
     the fan-out then shares nothing but read-only model weights.
     Results return in the order of [methods]. *)
  let reports =
    Par.map_array
      (fun m ->
        let scenario = scenario_of m in
        evaluate ~tick_s ?latency_override_ms:(cadence_ms m) ~debug ~duration_s
          scenario m)
      (Array.of_list methods)
  in
  Array.to_list reports
